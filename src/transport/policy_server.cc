#include "transport/policy_server.h"

#include <chrono>
#include <utility>

#include "obs/snapshot_codec.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sim2rec {
namespace transport {
namespace {

/// Idle tick between requests: how often a worker blocked on a quiet
/// connection re-checks the stop flag. Bounds shutdown latency, not
/// request latency (a readable channel is handled immediately).
constexpr int kIdleTickMs = 50;

}  // namespace

PolicyServer::PolicyServer(serve::PolicyService* service,
                           const PolicyServerConfig& config)
    : service_(service), config_(config) {
  S2R_CHECK(service != nullptr);
  S2R_CHECK(config.num_workers >= 1);
  S2R_CHECK(config.max_pending_connections >= 1);
  S2R_CHECK(config.dispatch_threads >= 1);
  S2R_CHECK(config.max_inflight_per_connection >= 1);
  S2R_CHECK(config.shm_lanes >= 0);
  S2R_CHECK(config.limits.request_timeout_ms > 0);
  S2R_CHECK(config.limits.max_frame_bytes > kMaxFrameHeaderBytes);
}

PolicyServer::~PolicyServer() { Shutdown(); }

bool PolicyServer::Start() {
  S2R_CHECK_MSG(!started_, "PolicyServer::Start called twice");
  if (!listener_.Listen(config_.host, config_.port,
                        config_.max_pending_connections)) {
    S2R_LOG_ERROR("transport: cannot bind %s:%d", config_.host.c_str(),
                  config_.port);
    return false;
  }
  port_ = listener_.port();
  started_ = true;

  for (int i = 0; i < config_.shm_lanes; ++i) {
    ShmLaneConfig lane_config;
    lane_config.ring_bytes = config_.shm_ring_bytes;
    lane_config.max_frame_bytes = config_.limits.max_frame_bytes;
    const std::string lane_name =
        config_.shm_name + "." + std::to_string(i);
    auto lane = ShmLane::Create(lane_name, lane_config);
    if (lane == nullptr) {
      // Shared memory unavailable or a stale segment in the way:
      // degrade to TCP-only rather than refusing to serve.
      S2R_LOG_ERROR("transport: cannot create shm lane %s; %s",
                    lane_name.c_str(),
                    i == 0 ? "serving TCP only"
                           : "serving with fewer lanes");
      break;
    }
    lanes_.push_back(std::move(lane));
  }

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  for (auto& lane : lanes_) {
    pumps_.emplace_back([this, raw = lane.get()] { PumpLoop(raw); });
  }
  for (int i = 0; i < config_.dispatch_threads; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
  S2R_LOG_INFO(
      "transport: serving on %s:%d (%d workers, %d dispatchers, "
      "%zu shm lanes)",
      config_.host.c_str(), port_, config_.num_workers,
      config_.dispatch_threads, lanes_.size());
  return true;
}

void PolicyServer::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
  // The accept loop notices stop_ at its next tick (<= ~50ms); only
  // after it joins is the listener closed — closing an fd another
  // thread is polling would race.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Workers and pumps drain their connections' in-flight requests
  // before returning, which requires live dispatchers — so those are
  // stopped last.
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  for (auto& pump : pumps_) {
    if (pump.joinable()) pump.join();
  }
  {
    std::lock_guard<std::mutex> dispatch_lock(dispatch_mutex_);
    dispatch_stop_ = true;
  }
  dispatch_cv_.notify_all();
  for (auto& dispatcher : dispatchers_) {
    if (dispatcher.joinable()) dispatcher.join();
  }
  lanes_.clear();  // unlinks the shm segments
  std::lock_guard<std::mutex> queue_lock(queue_mutex_);
  pending_.clear();
}

PolicyServerStats PolicyServer::stats() const {
  PolicyServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.dispatched_requests =
      dispatched_requests_.load(std::memory_order_relaxed);
  stats.shm_sessions = shm_sessions_.load(std::memory_order_relaxed);
  stats.malformed_frames =
      malformed_frames_.load(std::memory_order_relaxed);
  stats.errors_sent = errors_sent_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  return stats;
}

void PolicyServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    IoStatus status = IoStatus::kOk;
    TcpConnection conn = listener_.Accept(kIdleTickMs, &status);
    if (status == IoStatus::kTimeout) continue;
    if (!conn.valid()) {
      // Listener closed (shutdown) or broken; either way, stop.
      if (!stop_.load(std::memory_order_relaxed)) {
        S2R_LOG_ERROR("transport: accept failed, stopping accept loop");
      }
      return;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    S2R_COUNT("transport.connections", 1);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.size() >=
          static_cast<size_t>(config_.max_pending_connections)) {
        // Refuse rather than queue unboundedly; the closed socket is
        // the backpressure signal.
        connections_rejected_.fetch_add(1, std::memory_order_relaxed);
        S2R_COUNT("transport.rejected_connections", 1);
        continue;  // conn destructor closes it
      }
      pending_.push_back(std::move(conn));
    }
    queue_cv_.notify_one();
  }
}

void PolicyServer::WorkerLoop() {
  for (;;) {
    TcpConnection conn;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    TcpChannel channel(std::move(conn));
    ServeChannel(&channel);
  }
}

void PolicyServer::PumpLoop(ShmLane* lane) {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto channel = lane->ServerChannel();
    // ServeChannel idles on WaitReadable ticks until a client attaches
    // and writes its first frame; a hangup (client_gone with the ring
    // drained) reads as kClosed, same as a TCP disconnect.
    ServeChannel(channel.get());
    if (stop_.load(std::memory_order_relaxed)) return;
    if (lane->claimed()) {
      shm_sessions_.fetch_add(1, std::memory_order_relaxed);
      S2R_COUNT("transport.shm_sessions", 1);
    }
    // Closing the channel raises server_gone and wakes the client;
    // wait for it to acknowledge (client_gone) before recycling the
    // rings — resetting under a still-mapped client would let a new
    // claimant share the lane with the old one.
    channel.reset();
    while (!stop_.load(std::memory_order_relaxed) && lane->claimed() &&
           !lane->client_departed()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    lane->ResetForNextClient();
  }
}

void PolicyServer::DispatcherLoop() {
  for (;;) {
    DispatchTask task;
    {
      std::unique_lock<std::mutex> lock(dispatch_mutex_);
      dispatch_cv_.wait(lock, [this] {
        return dispatch_stop_ || !dispatch_queue_.empty();
      });
      // Drain-then-stop: tasks still queued at shutdown must run (or
      // their readers would wait on inflight forever).
      if (dispatch_queue_.empty()) {
        if (dispatch_stop_) return;
        continue;
      }
      task = std::move(dispatch_queue_.front());
      dispatch_queue_.pop_front();
    }
    const bool ok = HandleFrame(*task.conn, task.header, task.payload);
    if (!ok) {
      // Reply unwritable: poison the connection and kick its reader
      // out of any blocked wait.
      task.conn->broken.store(true, std::memory_order_release);
      task.conn->channel->ShutdownBoth();
    }
    {
      // Notify while still holding mu: the reader destroys ConnState
      // (a stack object) the moment it observes inflight == 0, so an
      // after-unlock notify could touch a dead condvar.
      std::lock_guard<std::mutex> lock(task.conn->mu);
      --task.conn->inflight;
      task.conn->cv.notify_all();
    }
  }
}

void PolicyServer::ServeChannel(ByteChannel* channel) {
  ConnState conn;
  conn.channel = channel;
  uint8_t header[kMaxFrameHeaderBytes];
  bool send_malformed_error = false;
  const char* malformed_reason = nullptr;

  while (!stop_.load(std::memory_order_relaxed) &&
         !conn.broken.load(std::memory_order_acquire)) {
    // Idle tick: wait for the next request without holding a deadline
    // against a client that simply has nothing to ask yet.
    const IoStatus readable = channel->WaitReadable(kIdleTickMs);
    if (readable == IoStatus::kTimeout) continue;
    if (readable != IoStatus::kOk) break;

    // Bytes are flowing: the rest of the request runs on the deadline.
    const IoStatus header_status = channel->ReadFull(
        header, kFrameHeaderBytes, config_.limits.request_timeout_ms);
    if (header_status == IoStatus::kClosed) break;  // orderly hangup
    if (header_status != IoStatus::kOk) {
      // Truncated header / mid-stream disconnect / timeout.
      if (header_status == IoStatus::kTimeout) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        S2R_COUNT("transport.timeouts", 1);
      }
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      S2R_COUNT("transport.malformed_frames", 1);
      break;
    }

    FrameHeader frame;
    const HeaderStatus decoded =
        DecodeHeader(header, config_.limits.max_frame_bytes, &frame);
    if (decoded != HeaderStatus::kOk) {
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      S2R_COUNT("transport.malformed_frames", 1);
      send_malformed_error = true;
      malformed_reason = decoded == HeaderStatus::kBadMagic
                             ? "bad magic"
                             : "frame too large";
      break;  // framing lost; the stream cannot be trusted again
    }

    // v3 (and anything newer, which by contract keeps the v3 prefix)
    // carries the request id between the fixed header and the payload.
    const size_t header_len = FrameHeaderBytesFor(frame.version);
    if (header_len > kFrameHeaderBytes) {
      const IoStatus id_status = channel->ReadFull(
          header + kFrameHeaderBytes, header_len - kFrameHeaderBytes,
          config_.limits.request_timeout_ms);
      if (id_status != IoStatus::kOk) {
        if (id_status == IoStatus::kTimeout) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          S2R_COUNT("transport.timeouts", 1);
        }
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        S2R_COUNT("transport.malformed_frames", 1);
        break;
      }
      DecodeRequestId(header + kFrameHeaderBytes, &frame);
    }

    std::string payload(frame.payload_len, '\0');
    if (frame.payload_len > 0) {
      const IoStatus payload_status =
          channel->ReadFull(payload.data(), payload.size(),
                            config_.limits.request_timeout_ms);
      if (payload_status != IoStatus::kOk) {
        if (payload_status == IoStatus::kTimeout) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          S2R_COUNT("transport.timeouts", 1);
        }
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        S2R_COUNT("transport.malformed_frames", 1);
        break;
      }
    }

    if (!FrameCrcMatches(header, header_len, payload)) {
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      S2R_COUNT("transport.malformed_frames", 1);
      send_malformed_error = true;
      malformed_reason = "crc mismatch";
      break;  // bytes corrupted in flight; close
    }

    if (frame.version >= 3) {
      // Multiplexed lane: hand the request to the dispatch pool and go
      // straight back to reading, so several requests from this one
      // connection can sit inside the micro-batcher together. The
      // inflight cap is the per-connection backpressure valve.
      {
        std::unique_lock<std::mutex> lock(conn.mu);
        conn.cv.wait(lock, [this, &conn] {
          return conn.inflight < config_.max_inflight_per_connection ||
                 conn.broken.load(std::memory_order_acquire) ||
                 stop_.load(std::memory_order_relaxed);
        });
        if (conn.broken.load(std::memory_order_acquire)) break;
        ++conn.inflight;
      }
      dispatched_requests_.fetch_add(1, std::memory_order_relaxed);
      S2R_COUNT("transport.dispatched_requests", 1);
      {
        std::lock_guard<std::mutex> lock(dispatch_mutex_);
        dispatch_queue_.push_back(
            DispatchTask{&conn, frame, std::move(payload)});
      }
      dispatch_cv_.notify_one();
    } else {
      // Pre-v3 frames carry no request id, so replies are matched by
      // order alone: serve serially, exactly like the v2 server did.
      if (!HandleFrame(conn, frame, payload)) break;
    }
  }

  // The reader is done with the socket, but dispatched requests still
  // hold pointers to `conn` and the channel: drain before unwinding.
  {
    std::unique_lock<std::mutex> lock(conn.mu);
    conn.cv.wait(lock, [&conn] { return conn.inflight == 0; });
  }
  if (send_malformed_error &&
      !conn.broken.load(std::memory_order_acquire)) {
    // Best-effort diagnostic after the pipeline drained (a poisoned
    // frame must not interleave with in-flight replies).
    SendError(conn, WireError::kMalformedFrame, malformed_reason,
              kProtocolVersion, 0);
  }
}

bool PolicyServer::HandleFrame(ConnState& conn, const FrameHeader& header,
                               const std::string& payload) {
  S2R_TRACE_SPAN("transport/request", "type",
                 static_cast<double>(static_cast<uint8_t>(header.type)),
                 "bytes", static_cast<double>(payload.size()));
  requests_.fetch_add(1, std::memory_order_relaxed);
  S2R_COUNT("transport.requests", 1);
  S2R_HISTOGRAM("transport.request_bytes",
                static_cast<double>(FrameHeaderBytesFor(header.version) +
                                    payload.size()));
  const double start_us = obs::MonotonicMicros();

  // Replies (and typed errors) echo the request's version capped at
  // our own, so an old client only ever sees frames it understands;
  // reply payload layouts are identical across versions 1..3. The
  // request id rides back on every v3 reply — it is the multiplexing
  // key.
  const uint8_t reply_version = header.version > kProtocolVersion
                                    ? kProtocolVersion
                                    : header.version;
  const uint64_t id = header.request_id;

  // Version gate: the frame decoded (the header prefix is fixed across
  // versions), but its payload may mean something newer than this
  // binary. Intact request, unsupported — connection survives.
  if (header.version > kProtocolVersion) {
    SendError(conn, WireError::kUnsupportedVersion,
              "protocol version newer than server", reply_version, id);
    return true;
  }

  uint64_t trace_id = 0;  // nonzero once an Act request carried one

  bool ok = true;
  switch (header.type) {
    case MessageType::kActRequest: {
      uint64_t user_id = 0;
      nn::Tensor obs;
      if (!DecodeActRequest(payload, header.version, &user_id, &trace_id,
                            &obs) ||
          obs.rows() != 1 || obs.cols() < 1) {
        SendError(conn, WireError::kBadPayload, "bad act request",
                  reply_version, id);
        return true;
      }
      // The client's trace id becomes this thread's current trace id
      // for the whole handling window: the span below and every
      // exemplar recorded beneath service_->Act stamp it, which is
      // what lets a client-observed slow request resolve to the
      // server-side work that caused it.
      obs::TraceIdScope trace_scope(trace_id);
      serve::ServeReply reply;
      try {
        S2R_TRACE_SPAN("transport/act", "user",
                       static_cast<double>(user_id));
        reply = service_->Act(user_id, obs);
      } catch (const std::exception& e) {
        // A throwing backend (fault injection, transient shard trouble)
        // fails this request only: typed error frame, connection — and
        // every other session on it — survives.
        SendError(conn, WireError::kInternal, e.what(), reply_version, id);
        return true;
      }
      ok = SendFrame(conn, MessageType::kActReply, EncodeActReply(reply),
                     reply_version, id);
      break;
    }
    case MessageType::kEndSessionRequest: {
      uint64_t user_id = 0;
      if (!DecodeU64(payload, &user_id)) {
        SendError(conn, WireError::kBadPayload, "bad end-session request",
                  reply_version, id);
        return true;
      }
      try {
        service_->EndSession(user_id);
      } catch (const std::exception& e) {
        SendError(conn, WireError::kInternal, e.what(), reply_version, id);
        return true;
      }
      ok = SendFrame(conn, MessageType::kEndSessionReply, std::string(),
                     reply_version, id);
      break;
    }
    case MessageType::kPingRequest: {
      uint64_t nonce = 0;
      if (!DecodeU64(payload, &nonce)) {
        SendError(conn, WireError::kBadPayload, "bad ping request",
                  reply_version, id);
        return true;
      }
      ok = SendFrame(conn, MessageType::kPingReply,
                     EncodePingReply(nonce, kProtocolVersion),
                     reply_version, id);
      break;
    }
    case MessageType::kMetricsRequest: {
      if (!payload.empty()) {
        SendError(conn, WireError::kBadPayload, "bad metrics request",
                  reply_version, id);
        return true;
      }
      if (!config_.metrics_source) {
        SendError(conn, WireError::kUnavailable, "no metrics source",
                  reply_version, id);
        return true;
      }
      ok = SendFrame(conn, MessageType::kMetricsReply,
                     obs::EncodeSnapshot(config_.metrics_source()),
                     reply_version, id);
      break;
    }
    default:
      // Forward compatibility: a type from the future is an intact
      // request this binary cannot serve; say so and keep going.
      SendError(conn, WireError::kUnsupportedType, "unknown message type",
                reply_version, id);
      return true;
  }
  S2R_HISTOGRAM_EX("transport.request_us",
                   obs::MonotonicMicros() - start_us, trace_id, "type",
                   static_cast<double>(static_cast<uint8_t>(header.type)),
                   "bytes", static_cast<double>(payload.size()));
  return ok;
}

bool PolicyServer::SendFrame(ConnState& conn, MessageType type,
                             const std::string& payload, uint8_t version,
                             uint64_t request_id) {
  const std::string frame =
      EncodeFrame(type, payload, version, /*flags=*/0, request_id);
  IoStatus status;
  {
    // Dispatchers finish in completion order; the write mutex keeps
    // their reply frames from interleaving on the byte stream.
    std::lock_guard<std::mutex> lock(conn.write_mutex);
    status = conn.channel->WriteFull(frame.data(), frame.size(),
                                     config_.limits.request_timeout_ms);
  }
  if (status == IoStatus::kTimeout) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    S2R_COUNT("transport.timeouts", 1);
  }
  S2R_COUNT("transport.bytes_written", static_cast<int64_t>(frame.size()));
  return status == IoStatus::kOk;
}

bool PolicyServer::SendError(ConnState& conn, WireError code,
                             const char* message, uint8_t version,
                             uint64_t request_id) {
  errors_sent_.fetch_add(1, std::memory_order_relaxed);
  S2R_COUNT("transport.errors_sent", 1);
  return SendFrame(conn, MessageType::kError, EncodeError(code, message),
                   version, request_id);
}

}  // namespace transport
}  // namespace sim2rec
