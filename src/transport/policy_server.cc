#include "transport/policy_server.h"

#include <utility>

#include "obs/snapshot_codec.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sim2rec {
namespace transport {
namespace {

/// Idle tick between requests: how often a worker blocked on a quiet
/// connection re-checks the stop flag. Bounds shutdown latency, not
/// request latency (a readable socket is handled immediately).
constexpr int kIdleTickMs = 50;

}  // namespace

PolicyServer::PolicyServer(serve::PolicyService* service,
                           const PolicyServerConfig& config)
    : service_(service), config_(config) {
  S2R_CHECK(service != nullptr);
  S2R_CHECK(config.num_workers >= 1);
  S2R_CHECK(config.max_pending_connections >= 1);
  S2R_CHECK(config.request_timeout_ms > 0);
  S2R_CHECK(config.max_frame_bytes > kFrameHeaderBytes);
}

PolicyServer::~PolicyServer() { Shutdown(); }

bool PolicyServer::Start() {
  S2R_CHECK_MSG(!started_, "PolicyServer::Start called twice");
  if (!listener_.Listen(config_.host, config_.port,
                        config_.max_pending_connections)) {
    S2R_LOG_ERROR("transport: cannot bind %s:%d", config_.host.c_str(),
                  config_.port);
    return false;
  }
  port_ = listener_.port();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  S2R_LOG_INFO("transport: serving on %s:%d (%d workers)",
               config_.host.c_str(), port_, config_.num_workers);
  return true;
}

void PolicyServer::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
  // The accept loop notices stop_ at its next tick (<= ~50ms); only
  // after it joins is the listener closed — closing an fd another
  // thread is polling would race.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::lock_guard<std::mutex> queue_lock(queue_mutex_);
  pending_.clear();
}

PolicyServerStats PolicyServer::stats() const {
  PolicyServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.malformed_frames =
      malformed_frames_.load(std::memory_order_relaxed);
  stats.errors_sent = errors_sent_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  return stats;
}

void PolicyServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    IoStatus status = IoStatus::kOk;
    TcpConnection conn = listener_.Accept(kIdleTickMs, &status);
    if (status == IoStatus::kTimeout) continue;
    if (!conn.valid()) {
      // Listener closed (shutdown) or broken; either way, stop.
      if (!stop_.load(std::memory_order_relaxed)) {
        S2R_LOG_ERROR("transport: accept failed, stopping accept loop");
      }
      return;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    S2R_COUNT("transport.connections", 1);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.size() >=
          static_cast<size_t>(config_.max_pending_connections)) {
        // Refuse rather than queue unboundedly; the closed socket is
        // the backpressure signal.
        connections_rejected_.fetch_add(1, std::memory_order_relaxed);
        S2R_COUNT("transport.rejected_connections", 1);
        continue;  // conn destructor closes it
      }
      pending_.push_back(std::move(conn));
    }
    queue_cv_.notify_one();
  }
}

void PolicyServer::WorkerLoop() {
  for (;;) {
    TcpConnection conn;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    ServeConnection(std::move(conn));
  }
}

void PolicyServer::ServeConnection(TcpConnection conn) {
  uint8_t header[kFrameHeaderBytes];
  while (!stop_.load(std::memory_order_relaxed)) {
    // Idle tick: wait for the next request without holding a deadline
    // against a client that simply has nothing to ask yet.
    const IoStatus readable = conn.WaitReadable(kIdleTickMs);
    if (readable == IoStatus::kTimeout) continue;
    if (readable != IoStatus::kOk) return;

    // Bytes are flowing: the rest of the request runs on the deadline.
    const IoStatus header_status =
        conn.ReadFull(header, kFrameHeaderBytes, config_.request_timeout_ms);
    if (header_status == IoStatus::kClosed) return;  // orderly hangup
    if (header_status != IoStatus::kOk) {
      // Truncated header / mid-stream disconnect / timeout.
      if (header_status == IoStatus::kTimeout) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        S2R_COUNT("transport.timeouts", 1);
      }
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      S2R_COUNT("transport.malformed_frames", 1);
      return;
    }

    FrameHeader frame;
    const HeaderStatus decoded =
        DecodeHeader(header, config_.max_frame_bytes, &frame);
    if (decoded != HeaderStatus::kOk) {
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      S2R_COUNT("transport.malformed_frames", 1);
      SendError(conn, WireError::kMalformedFrame,
                decoded == HeaderStatus::kBadMagic ? "bad magic"
                                                   : "frame too large");
      return;  // framing lost; the stream cannot be trusted again
    }

    std::string payload(frame.payload_len, '\0');
    if (frame.payload_len > 0) {
      const IoStatus payload_status = conn.ReadFull(
          payload.data(), payload.size(), config_.request_timeout_ms);
      if (payload_status != IoStatus::kOk) {
        if (payload_status == IoStatus::kTimeout) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          S2R_COUNT("transport.timeouts", 1);
        }
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        S2R_COUNT("transport.malformed_frames", 1);
        return;
      }
    }

    if (!FrameCrcMatches(header, payload)) {
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      S2R_COUNT("transport.malformed_frames", 1);
      SendError(conn, WireError::kMalformedFrame, "crc mismatch");
      return;  // bytes corrupted in flight; close
    }

    if (!HandleFrame(conn, frame, payload)) return;
  }
}

bool PolicyServer::HandleFrame(TcpConnection& conn,
                               const FrameHeader& header,
                               const std::string& payload) {
  S2R_TRACE_SPAN("transport/request", "type",
                 static_cast<double>(static_cast<uint8_t>(header.type)),
                 "bytes", static_cast<double>(payload.size()));
  requests_.fetch_add(1, std::memory_order_relaxed);
  S2R_COUNT("transport.requests", 1);
  S2R_HISTOGRAM("transport.request_bytes",
                static_cast<double>(kFrameHeaderBytes + payload.size()));
  const double start_us = obs::MonotonicMicros();

  // Version gate: the frame decoded (the header layout is fixed across
  // versions), but its payload may mean something newer than this
  // binary. Intact request, unsupported — connection survives.
  if (header.version > kProtocolVersion) {
    SendError(conn, WireError::kUnsupportedVersion,
              "protocol version newer than server");
    return true;
  }

  // Replies (and typed errors) echo the request's version so an old
  // client only ever sees frames it understands; reply payload layouts
  // are identical across versions 1 and 2.
  const uint8_t reply_version = header.version;
  uint64_t trace_id = 0;  // nonzero once an Act request carried one

  bool ok = true;
  switch (header.type) {
    case MessageType::kActRequest: {
      uint64_t user_id = 0;
      nn::Tensor obs;
      if (!DecodeActRequest(payload, header.version, &user_id, &trace_id,
                            &obs) ||
          obs.rows() != 1 || obs.cols() < 1) {
        SendError(conn, WireError::kBadPayload, "bad act request",
                  reply_version);
        return true;
      }
      // The client's trace id becomes this thread's current trace id
      // for the whole handling window: the span below and every
      // exemplar recorded beneath service_->Act stamp it, which is
      // what lets a client-observed slow request resolve to the
      // server-side work that caused it.
      obs::TraceIdScope trace_scope(trace_id);
      serve::ServeReply reply;
      try {
        S2R_TRACE_SPAN("transport/act", "user",
                       static_cast<double>(user_id));
        reply = service_->Act(user_id, obs);
      } catch (const std::exception& e) {
        // A throwing backend (fault injection, transient shard trouble)
        // fails this request only: typed error frame, connection — and
        // every other session on it — survives.
        SendError(conn, WireError::kInternal, e.what(), reply_version);
        return true;
      }
      ok = SendFrame(conn, MessageType::kActReply, EncodeActReply(reply),
                     reply_version);
      break;
    }
    case MessageType::kEndSessionRequest: {
      uint64_t user_id = 0;
      if (!DecodeU64(payload, &user_id)) {
        SendError(conn, WireError::kBadPayload, "bad end-session request",
                  reply_version);
        return true;
      }
      try {
        service_->EndSession(user_id);
      } catch (const std::exception& e) {
        SendError(conn, WireError::kInternal, e.what(), reply_version);
        return true;
      }
      ok = SendFrame(conn, MessageType::kEndSessionReply, std::string(),
                     reply_version);
      break;
    }
    case MessageType::kPingRequest: {
      uint64_t nonce = 0;
      if (!DecodeU64(payload, &nonce)) {
        SendError(conn, WireError::kBadPayload, "bad ping request",
                  reply_version);
        return true;
      }
      ok = SendFrame(conn, MessageType::kPingReply,
                     EncodePingReply(nonce, kProtocolVersion),
                     reply_version);
      break;
    }
    case MessageType::kMetricsRequest: {
      if (!payload.empty()) {
        SendError(conn, WireError::kBadPayload, "bad metrics request",
                  reply_version);
        return true;
      }
      if (!config_.metrics_source) {
        SendError(conn, WireError::kUnavailable, "no metrics source",
                  reply_version);
        return true;
      }
      ok = SendFrame(conn, MessageType::kMetricsReply,
                     obs::EncodeSnapshot(config_.metrics_source()),
                     reply_version);
      break;
    }
    default:
      // Forward compatibility: a type from the future is an intact
      // request this binary cannot serve; say so and keep going.
      SendError(conn, WireError::kUnsupportedType, "unknown message type",
                reply_version);
      return true;
  }
  S2R_HISTOGRAM_EX("transport.request_us",
                   obs::MonotonicMicros() - start_us, trace_id, "type",
                   static_cast<double>(static_cast<uint8_t>(header.type)),
                   "bytes", static_cast<double>(payload.size()));
  return ok;
}

bool PolicyServer::SendFrame(TcpConnection& conn, MessageType type,
                             const std::string& payload, uint8_t version) {
  const std::string frame = EncodeFrame(type, payload, version);
  const IoStatus status =
      conn.WriteFull(frame.data(), frame.size(), config_.request_timeout_ms);
  if (status == IoStatus::kTimeout) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    S2R_COUNT("transport.timeouts", 1);
  }
  S2R_COUNT("transport.bytes_written", static_cast<int64_t>(frame.size()));
  return status == IoStatus::kOk;
}

bool PolicyServer::SendError(TcpConnection& conn, WireError code,
                             const char* message, uint8_t version) {
  errors_sent_.fetch_add(1, std::memory_order_relaxed);
  S2R_COUNT("transport.errors_sent", 1);
  return SendFrame(conn, MessageType::kError, EncodeError(code, message),
                   version);
}

}  // namespace transport
}  // namespace sim2rec
