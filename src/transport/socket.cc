#include "transport/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace sim2rec {
namespace transport {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget of a deadline started `start_ms` ago with
/// `timeout_ms` total; clamped to >= 0 for poll().
int RemainingMs(int64_t deadline_ms) {
  const int64_t left = deadline_ms - NowMs();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(left, 1 << 30));
}

/// poll() one fd for `events`, EINTR-safe. Returns >0 ready, 0 timeout,
/// <0 error.
int PollOne(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc >= 0) return rc;
    if (errno != EINTR) return -1;
  }
}

bool SetNoDelay(int fd) {
  int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

bool FillAddr(const std::string& host, int port, struct sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) {
  if (fd_ >= 0) SetNoDelay(fd_);
}

TcpConnection::~TcpConnection() { Close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpConnection::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpConnection TcpConnection::Connect(const std::string& host, int port,
                                     int timeout_ms) {
  struct sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) return TcpConnection();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return TcpConnection();

  const int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return TcpConnection();
  }
  if (rc != 0) {
    // Connection in progress: wait for writability, then check the
    // socket-level error slot.
    if (PollOne(fd, POLLOUT, timeout_ms) <= 0) {
      ::close(fd);
      return TcpConnection();
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return TcpConnection();
    }
  }
  // Back to blocking; all timeouts from here run through poll().
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    ::close(fd);
    return TcpConnection();
  }
  return TcpConnection(fd);
}

IoStatus TcpConnection::ReadFull(void* buffer, size_t size,
                                 int timeout_ms) {
  if (fd_ < 0) return IoStatus::kClosed;
  char* out = static_cast<char*>(buffer);
  size_t done = 0;
  const int64_t deadline = NowMs() + timeout_ms;
  while (done < size) {
    const int rc = PollOne(fd_, POLLIN, RemainingMs(deadline));
    if (rc < 0) return IoStatus::kError;
    if (rc == 0) return IoStatus::kTimeout;
    const ssize_t n = ::recv(fd_, out + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus TcpConnection::WriteFull(const void* buffer, size_t size,
                                  int timeout_ms) {
  if (fd_ < 0) return IoStatus::kClosed;
  const char* in = static_cast<const char*>(buffer);
  size_t done = 0;
  const int64_t deadline = NowMs() + timeout_ms;
  while (done < size) {
    const int rc = PollOne(fd_, POLLOUT, RemainingMs(deadline));
    if (rc < 0) return IoStatus::kError;
    if (rc == 0) return IoStatus::kTimeout;
    const ssize_t n = ::send(fd_, in + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return IoStatus::kClosed;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus TcpConnection::ReadSome(void* buffer, size_t max_size,
                                 int timeout_ms, size_t* bytes_read) {
  *bytes_read = 0;
  if (fd_ < 0) return IoStatus::kClosed;
  if (max_size == 0) return IoStatus::kOk;
  const int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    const int rc = PollOne(fd_, POLLIN, RemainingMs(deadline));
    if (rc < 0) return IoStatus::kError;
    if (rc == 0) return IoStatus::kTimeout;
    const ssize_t n = ::recv(fd_, buffer, max_size, 0);
    if (n > 0) {
      *bytes_read = static_cast<size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
}

IoStatus TcpConnection::WaitReadable(int timeout_ms) {
  if (fd_ < 0) return IoStatus::kClosed;
  const int rc = PollOne(fd_, POLLIN, timeout_ms);
  if (rc < 0) return IoStatus::kError;
  if (rc == 0) return IoStatus::kTimeout;
  return IoStatus::kOk;
}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpListener::Listen(const std::string& host, int port, int backlog) {
  Close();
  struct sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return false;
  }
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) !=
      0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return true;
}

TcpConnection TcpListener::Accept(int timeout_ms, IoStatus* status) {
  if (fd_ < 0) {
    *status = IoStatus::kClosed;
    return TcpConnection();
  }
  const int rc = PollOne(fd_, POLLIN, timeout_ms);
  if (rc < 0) {
    *status = IoStatus::kError;
    return TcpConnection();
  }
  if (rc == 0) {
    *status = IoStatus::kTimeout;
    return TcpConnection();
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    *status = (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
               errno == ECONNABORTED)
                  ? IoStatus::kTimeout
                  : IoStatus::kError;
    return TcpConnection();
  }
  *status = IoStatus::kOk;
  return TcpConnection(fd);
}

}  // namespace transport
}  // namespace sim2rec
