#ifndef SIM2REC_TRANSPORT_LIMITS_H_
#define SIM2REC_TRANSPORT_LIMITS_H_

#include <cstddef>

namespace sim2rec {
namespace transport {

/// Default per-side frame-size bound; every transport surface rejects
/// larger frames before allocating for them.
constexpr size_t kDefaultMaxFrameBytes = size_t{4} << 20;

/// Framing and deadline limits shared by every transport surface —
/// PolicyClientConfig, PolicyServerConfig and HttpMetricsConfig all
/// embed one `Limits`, so the frame-size bound and timeout defaults
/// are defined exactly once and cannot drift between the three.
///
/// The semantics per surface:
///  * max_frame_bytes — protocol frames (header + payload) larger than
///    this are rejected before any payload allocation. The HTTP
///    endpoint has no protocol frames; it bounds request lines with
///    its own max_request_bytes instead and ignores this field.
///  * request_timeout_ms — the full per-request budget. Server side:
///    header-start to reply-written. Client side: the default
///    submit-to-reply deadline (overridable per request on the async
///    tier).
///  * connect_timeout_ms — client-side connection establishment,
///    including the version-negotiation ping. Ignored by servers.
struct Limits {
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  int request_timeout_ms = 5000;
  int connect_timeout_ms = 2000;
};

}  // namespace transport
}  // namespace sim2rec

#endif  // SIM2REC_TRANSPORT_LIMITS_H_
