#include "transport/http_endpoint.h"

#include <utility>

#include "util/logging.h"

namespace sim2rec {
namespace transport {
namespace {

constexpr int kIdleTickMs = 50;

/// "GET /metrics HTTP/1.0" -> method "GET", target "/metrics". Query
/// strings are stripped; false when the request line is not even
/// method-SP-target shaped.
bool ParseRequestLine(const std::string& request, std::string* method,
                      std::string* target) {
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  *method = line.substr(0, sp1);
  *target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = target->find('?');
  if (query != std::string::npos) target->resize(query);
  return true;
}

std::string BuildResponse(int status, const char* reason,
                          const char* content_type,
                          const std::string& body, bool include_body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + ' ' + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  if (include_body) out += body;
  return out;
}

}  // namespace

HttpMetricsServer::HttpMetricsServer(
    std::function<obs::MetricsSnapshot()> snapshot_source,
    const HttpMetricsConfig& config)
    : snapshot_source_(std::move(snapshot_source)), config_(config) {
  S2R_CHECK(snapshot_source_ != nullptr);
  S2R_CHECK(config.limits.request_timeout_ms > 0);
  S2R_CHECK(config.max_request_bytes >= 16);
}

HttpMetricsServer::~HttpMetricsServer() { Shutdown(); }

bool HttpMetricsServer::Start() {
  S2R_CHECK_MSG(!started_, "HttpMetricsServer::Start called twice");
  if (!listener_.Listen(config_.host, config_.port, /*backlog=*/16)) {
    S2R_LOG_ERROR("http: cannot bind %s:%d", config_.host.c_str(),
                  config_.port);
    return false;
  }
  port_ = listener_.port();
  started_ = true;
  thread_ = std::thread([this] { ServeLoop(); });
  return true;
}

void HttpMetricsServer::Shutdown() {
  if (!started_) return;
  if (stop_.exchange(true, std::memory_order_relaxed)) return;
  if (thread_.joinable()) thread_.join();
  listener_.Close();
}

std::string HttpMetricsServer::url() const {
  return "http://" + config_.host + ':' + std::to_string(port_);
}

HttpMetricsStats HttpMetricsServer::stats() const {
  HttpMetricsStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  stats.not_found = not_found_.load(std::memory_order_relaxed);
  return stats;
}

void HttpMetricsServer::ServeLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    IoStatus status = IoStatus::kOk;
    TcpConnection conn = listener_.Accept(kIdleTickMs, &status);
    if (status == IoStatus::kTimeout) continue;
    if (!conn.valid()) {
      if (!stop_.load(std::memory_order_relaxed)) {
        S2R_LOG_ERROR("http: accept failed, stopping metrics endpoint");
      }
      return;
    }
    ServeConnection(std::move(conn));
  }
}

void HttpMetricsServer::ServeConnection(TcpConnection conn) {
  // Read until the end of the header block or the size cap; a GET has
  // no body, so "\r\n\r\n" is the whole request.
  std::string request;
  bool complete = false;
  while (request.size() < config_.max_request_bytes) {
    char buffer[1024];
    size_t n = 0;
    const IoStatus status =
        conn.ReadSome(buffer, sizeof(buffer), config_.limits.request_timeout_ms,
                      &n);
    if (status != IoStatus::kOk) break;
    request.append(buffer, n);
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }

  std::string method, target;
  if (!complete || !ParseRequestLine(request, &method, &target)) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    const std::string response = BuildResponse(
        400, "Bad Request", "text/plain", "bad request\n", true);
    conn.WriteFull(response.data(), response.size(),
                   config_.limits.request_timeout_ms);
    return;
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  const bool head = method == "HEAD";
  std::string response;
  if (method != "GET" && !head) {
    response = BuildResponse(405, "Method Not Allowed", "text/plain",
                             "GET only\n", true);
  } else if (target == "/healthz") {
    response = BuildResponse(200, "OK", "text/plain", "ok\n", !head);
  } else if (target == "/metrics") {
    response = BuildResponse(
        200, "OK", "text/plain; version=0.0.4",
        snapshot_source_().ToPrometheusText(), !head);
  } else if (target == "/metrics.json") {
    response = BuildResponse(200, "OK", "application/json",
                             snapshot_source_().ToJson() + "\n", !head);
  } else {
    not_found_.fetch_add(1, std::memory_order_relaxed);
    response = BuildResponse(404, "Not Found", "text/plain",
                             "unknown path\n", !head);
  }
  conn.WriteFull(response.data(), response.size(),
                 config_.limits.request_timeout_ms);
}

}  // namespace transport
}  // namespace sim2rec
