#ifndef SIM2REC_TRANSPORT_WIRE_H_
#define SIM2REC_TRANSPORT_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "nn/tensor.h"
#include "serve/policy_service.h"
#include "transport/limits.h"

namespace sim2rec {
namespace transport {

/// Byte-level wire protocol of the serving transport. The normative
/// reference — frame layout, every field encoding, the worked hex dump
/// of an Act round trip, and the compatibility policy — lives in
/// docs/PROTOCOL.md; this header is its executable counterpart.
///
/// Every message travels in one frame:
///
///   offset size field
///   0      4    magic 0x54523253 ("S2RT" when read as bytes)
///   4      1    protocol version of the sender (currently 3)
///   5      1    message type (MessageType)
///   6      2    flags — reserved, senders write 0, receivers ignore
///   8      4    payload length in bytes
///   12     4    CRC-32 (zlib polynomial, util/crc32) over header
///               bytes [0, 12), then (v3+) the request-id bytes,
///               then the payload
///   16     8    u64 request id — v3+ frames only; v1/v2 headers end
///               at offset 16
///   16/24  n    payload
///
/// All integers are little-endian; doubles are IEEE-754 binary64 bit
/// patterns, so replies decoded from the wire are bitwise-identical to
/// the in-process values — the repo's replay guarantee crosses the
/// network boundary intact.
///
/// The request id is the multiplexing key: a v3 client may pipeline
/// many requests on one connection, the server dispatches them to its
/// worker pool concurrently, and every reply (including typed kError
/// replies) carries the id of the request it answers — so replies may
/// arrive in any order. The id is opaque to the server (echoed, never
/// interpreted); uniqueness among a connection's in-flight requests is
/// the client's job. Within one connection, pipelined requests may be
/// *processed* concurrently: callers must not pipeline two
/// order-dependent requests (e.g. two Acts for the same user, or an
/// Act and the EndSession that follows it) without awaiting the first.
///
/// Compatibility policy (mirrors the checkpoint-manifest policy in
/// serve/checkpoint.h): the version is bumped ONLY when correct
/// decoding requires new understanding. Purely additive evolution rides
/// on new message types (an unknown type gets a kUnsupportedType error
/// reply, the connection survives) or on flags bits (receivers must
/// ignore bits they do not know). Receivers accept every version up to
/// their own; a newer version is answered with kUnsupportedVersion —
/// reported distinctly, never conflated with corruption.
///
/// Version history:
///   1  initial protocol.
///   2  Act request payload gains a u64 trace id between the user id
///      and the observation tensor (the correlation key the
///      observability plane shares — see obs/trace.h). Version-2
///      request payloads need new decoding, hence the bump; every
///      reply payload is unchanged, and a server answering a v1
///      request echoes version 1 on the reply frame, so v1 clients
///      interoperate with v2 servers in both directions.
///   3  the frame header grows a u64 request id after the CRC (header
///      is 24 bytes, CRC covers the id), enabling out-of-order replies
///      and pipelining. v1/v2 frames keep their 16-byte header and are
///      served one at a time in arrival order, replied at the sender's
///      version — the reply-echo policy unchanged.

constexpr uint32_t kFrameMagic = 0x54523253;  // "S2RT"
constexpr uint8_t kProtocolVersion = 3;
/// Fixed header prefix shared by every protocol version. v3+ frames
/// append kRequestIdBytes more header bytes (the u64 request id).
constexpr size_t kFrameHeaderBytes = 16;
constexpr size_t kRequestIdBytes = 8;
constexpr size_t kMaxFrameHeaderBytes = kFrameHeaderBytes + kRequestIdBytes;

/// Header size (prefix + request id when present) for a given frame
/// version — how many bytes precede the payload.
constexpr size_t FrameHeaderBytesFor(uint8_t version) {
  return version >= 3 ? kMaxFrameHeaderBytes : kFrameHeaderBytes;
}

enum class MessageType : uint8_t {
  kActRequest = 1,         // u64 user_id, u64 trace_id (v2+), tensor obs
  kActReply = 2,           // tensor action, u8 clamped, f64 value, u32 batch
  kEndSessionRequest = 3,  // u64 user_id
  kEndSessionReply = 4,    // empty
  kPingRequest = 5,        // u64 nonce
  kPingReply = 6,          // u64 nonce echoed, u8 server protocol version
  kMetricsRequest = 7,     // empty
  kMetricsReply = 8,       // obs::EncodeSnapshot payload
  kError = 9,              // u16 WireError, u32 message length, message
};

/// Error codes a peer sends in a kError frame. Operationally distinct:
/// kUnsupportedVersion / kUnsupportedType mean the request was intact
/// but beyond this binary (upgrade something); the rest mean the bytes
/// or the request itself were bad.
enum class WireError : uint16_t {
  kNone = 0,
  kMalformedFrame = 1,      // bad magic, oversized length, CRC mismatch
  kUnsupportedVersion = 2,  // sender's protocol version is newer
  kUnsupportedType = 3,     // unknown MessageType
  kBadPayload = 4,          // frame intact, payload did not decode
  kUnavailable = 5,         // e.g. metrics requested but no source wired
  kInternal = 6,
};

const char* WireErrorName(WireError error);

/// Client-side typed error surface: what a request attempt came back
/// with. kRemoteError means the server answered with a kError frame
/// (inspect the WireError for why); everything else is local transport
/// failure.
enum class TransportStatus {
  kOk = 0,
  kConnectFailed,
  kTimeout,
  kClosed,          // peer closed / mid-stream disconnect
  kMalformedReply,  // reply frame failed magic/CRC/decode checks
  kFrameTooLarge,   // reply exceeded this side's max_frame_bytes
  kRemoteError,     // server sent a kError frame
  kInvalidHandle,   // Await on an unknown / already-awaited handle
};

const char* TransportStatusName(TransportStatus status);

/// Decoded frame header, validated against magic and a frame-size
/// bound but not yet against the CRC (the payload is needed for that).
/// `request_id` stays 0 until the caller reads the v3 header extension
/// (DecodeRequestId) — v1/v2 frames have no request-id field.
struct FrameHeader {
  uint8_t version = 0;
  MessageType type = MessageType::kError;
  uint16_t flags = 0;
  uint32_t payload_len = 0;
  uint32_t crc32 = 0;
  uint64_t request_id = 0;
};

enum class HeaderStatus {
  kOk = 0,
  kBadMagic,
  kTooLarge,  // payload_len + header exceeds max_frame_bytes
};

/// Encodes one complete frame (header + payload) ready to write.
/// Version >= 3 frames carry `request_id` in the header (CRC-covered);
/// the id is ignored for v1/v2 frames, which have no field for it.
std::string EncodeFrame(MessageType type, const std::string& payload,
                        uint8_t version = kProtocolVersion,
                        uint16_t flags = 0, uint64_t request_id = 0);

/// Validates the fixed-size header prefix. `header` must hold
/// kFrameHeaderBytes bytes. The type byte is NOT range-checked here —
/// an unknown type must survive header decoding so the receiver can
/// answer kUnsupportedType instead of dropping the connection. For a
/// v3+ frame the caller then reads kRequestIdBytes more header bytes
/// and hands them to DecodeRequestId.
HeaderStatus DecodeHeader(const uint8_t* header, size_t max_frame_bytes,
                          FrameHeader* out);

/// Decodes the v3 header extension (`bytes` holds kRequestIdBytes)
/// into out->request_id.
void DecodeRequestId(const uint8_t* bytes, FrameHeader* out);

/// True when the stored CRC matches header bytes [0, 12), then header
/// bytes [16, header_len) — the request id, when present — then the
/// payload. `header_len` is FrameHeaderBytesFor(version): 16 for
/// v1/v2 frames, 24 for v3+ (the caller must have read the request-id
/// bytes into `header + 16`).
bool FrameCrcMatches(const uint8_t* header, size_t header_len,
                     const std::string& payload);

// --- Payload codecs. Every Decode* returns false on truncated,
// oversized or trailing bytes and leaves outputs unspecified-but-valid;
// none of them aborts on malformed input. -------------------------------

/// Current-version (v2) Act request: u64 user id, u64 trace id (0 =
/// no trace in scope), tensor obs.
std::string EncodeActRequest(uint64_t user_id, const nn::Tensor& obs,
                             uint64_t trace_id = 0);
/// Version-1 layout (no trace id) — kept so v2 builds can still emit
/// frames an old peer understands, and for compatibility tests.
std::string EncodeActRequestV1(uint64_t user_id, const nn::Tensor& obs);
/// Version-aware decode: `version` is the frame header's version byte.
/// Version <= 1 payloads carry no trace id (*trace_id set to 0).
bool DecodeActRequest(const std::string& payload, uint8_t version,
                      uint64_t* user_id, uint64_t* trace_id,
                      nn::Tensor* obs);

std::string EncodeActReply(const serve::ServeReply& reply);
bool DecodeActReply(const std::string& payload, serve::ServeReply* reply);

/// EndSession request and Ping request/reply payloads are a single u64
/// (user id / echoed nonce); the ping reply additionally carries the
/// responder's protocol version for negotiation diagnostics.
std::string EncodeU64(uint64_t value);
bool DecodeU64(const std::string& payload, uint64_t* value);

std::string EncodePingReply(uint64_t nonce, uint8_t version);
bool DecodePingReply(const std::string& payload, uint64_t* nonce,
                     uint8_t* version);

std::string EncodeError(WireError code, const std::string& message);
bool DecodeError(const std::string& payload, WireError* code,
                 std::string* message);

}  // namespace transport
}  // namespace sim2rec

#endif  // SIM2REC_TRANSPORT_WIRE_H_
