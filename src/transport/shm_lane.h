#ifndef SIM2REC_TRANSPORT_SHM_LANE_H_
#define SIM2REC_TRANSPORT_SHM_LANE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "transport/channel.h"

namespace sim2rec {
namespace transport {

struct ShmLaneConfig {
  /// Per-direction ring capacity in bytes. Must comfortably exceed
  /// max_frame_bytes of the frames travelling the lane, or large
  /// frames deadlock waiting for space that can never appear (Create
  /// refuses rings smaller than one maximal frame + header).
  size_t ring_bytes = size_t{1} << 20;
  /// Bound for frames read off the lane (same meaning as the TCP
  /// sides' Limits::max_frame_bytes; kept here so a lane is
  /// self-describing about what it can carry).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Same-host shared-memory fast lane: one POSIX shm segment holding a
/// pair of fixed-size SPSC byte rings (client→server requests,
/// server→client replies) that carry the *same* wire frames as the TCP
/// lane — same codec, same CRC-32, same raw IEEE-754 reply bytes, so
/// the bitwise-reply guarantee holds unchanged while the kernel
/// socket stack drops out of the round trip.
///
/// Ring discipline: bytes are published with release stores on the
/// producer cursor and consumed with acquire loads, so the frame bytes
/// themselves need no locks; each ring has exactly one producer and
/// one consumer. Waiting sides park on a futex word (a short spin
/// first) — no busy polling, which matters on shared or single-core
/// hosts where spinning would steal the peer's timeslice.
///
/// Lifecycle: the server Create()s a lane (owns the segment, unlinks
/// it on destruction) and pumps it with ServerChannel(). A client
/// Attach()es by name, claiming the lane with a CAS — one client at a
/// time per lane; Dial("shm://name") scans `name.0`, `name.1`, ... for
/// a free lane. When the client hangs up the server resets the rings
/// and reopens the lane for the next client. A client that dies
/// without closing leaves the lane claimed until the server notices
/// EOF-silence is not detectable here — operators size `shm_lanes`
/// per expected same-host client and treat a leaked claim like a
/// leaked fd (restart the client, or the server).
class ShmLane {
 public:
  ~ShmLane();

  ShmLane(const ShmLane&) = delete;
  ShmLane& operator=(const ShmLane&) = delete;

  /// Server side: creates (O_EXCL) and maps `/dev/shm` segment
  /// `s2r.<name>`. Returns nullptr when shared memory is unavailable
  /// (no /dev/shm, permissions) or the name already exists — callers
  /// degrade to TCP-only and log, never abort.
  static std::unique_ptr<ShmLane> Create(const std::string& name,
                                         const ShmLaneConfig& config);

  /// Client side: maps an existing lane and claims it. Returns nullptr
  /// when the segment does not exist, is incompatible (magic/version/
  /// size mismatch), the server is gone, or another client holds the
  /// claim.
  static std::unique_ptr<ShmLane> Attach(const std::string& name);

  /// True when segment `s2r.<name>` exists — lets Dial's lane scan
  /// tell "all lanes busy, keep scanning" apart from "ran off the end
  /// of the lane group".
  static bool Exists(const std::string& name);

  /// The serving end: ReadFull consumes the request ring, WriteFull
  /// produces into the reply ring. Call once; the channel borrows the
  /// lane (the lane must outlive it).
  std::unique_ptr<ByteChannel> ServerChannel();
  /// The dialing end: mirror roles. The returned channel's Close()
  /// releases the claim so the lane can serve the next client.
  std::unique_ptr<ByteChannel> ClientChannel();

  /// Server side, between clients: bumps the session epoch (so any
  /// straggling hangup store from the departed client's teardown is
  /// ignored), drops any unconsumed bytes, clears the hangup flags and
  /// reopens the lane for the next Attach. Must only run with no
  /// client attached (claim still held by the departed client until
  /// this clears it).
  void ResetForNextClient();

  /// True while a client holds the claim.
  bool claimed() const;

  /// True once the attached client has hung up (set by its channel
  /// Close or its ShmLane destructor). The server's pump waits for
  /// this before ResetForNextClient so the rings are never recycled
  /// under a client that is still mapped.
  bool client_departed() const;

  const std::string& name() const { return name_; }
  size_t ring_bytes() const;

 private:
  ShmLane() = default;

  std::string name_;        // lane name (not the shm path)
  std::string shm_path_;    // "/s2r.<name>"
  bool owner_ = false;      // created (server) vs attached (client)
  void* map_ = nullptr;
  size_t map_bytes_ = 0;
  // Client side: the lane epoch read when the claim was won. All of
  // this session's hangup stamps carry this value, so a store that
  // lands after the server has recycled the lane is inert.
  uint32_t attach_epoch_ = 0;
};

/// True when POSIX shared memory is usable in this environment (probed
/// once by creating and unlinking a scratch segment). Benches and
/// tests use it to skip shm rows instead of failing.
bool ShmAvailable();

}  // namespace transport
}  // namespace sim2rec

#endif  // SIM2REC_TRANSPORT_SHM_LANE_H_
