#include "transport/wire.h"

#include <cstring>

#include "util/bytes.h"
#include "util/crc32.h"

namespace sim2rec {
namespace transport {
namespace {

// Caps on tensor shapes decoded from the wire, over and above the
// frame-size bound: a hostile rows/cols pair must not overflow the
// byte-count arithmetic or trigger a huge allocation before the length
// check runs.
constexpr uint32_t kMaxTensorDim = 1u << 20;

// Error messages are diagnostics, not payloads; cap them.
constexpr uint32_t kMaxErrorMessageBytes = 4096;

void AppendTensor(std::string* out, const nn::Tensor& tensor) {
  AppendU32(out, static_cast<uint32_t>(tensor.rows()));
  AppendU32(out, static_cast<uint32_t>(tensor.cols()));
  for (int i = 0; i < tensor.size(); ++i) {
    AppendF64(out, tensor[static_cast<size_t>(i)]);
  }
}

bool ReadTensor(ByteReader* reader, nn::Tensor* tensor) {
  uint32_t rows = 0, cols = 0;
  if (!reader->ReadU32(&rows) || !reader->ReadU32(&cols)) return false;
  if (rows > kMaxTensorDim || cols > kMaxTensorDim) return false;
  const uint64_t count = static_cast<uint64_t>(rows) * cols;
  if (count * sizeof(double) > reader->remaining()) return false;
  nn::Tensor decoded(static_cast<int>(rows), static_cast<int>(cols));
  for (uint64_t i = 0; i < count; ++i) {
    if (!reader->ReadF64(&decoded[static_cast<size_t>(i)])) return false;
  }
  *tensor = std::move(decoded);
  return true;
}

}  // namespace

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kMalformedFrame: return "malformed_frame";
    case WireError::kUnsupportedVersion: return "unsupported_version";
    case WireError::kUnsupportedType: return "unsupported_type";
    case WireError::kBadPayload: return "bad_payload";
    case WireError::kUnavailable: return "unavailable";
    case WireError::kInternal: return "internal";
  }
  return "unknown";
}

const char* TransportStatusName(TransportStatus status) {
  switch (status) {
    case TransportStatus::kOk: return "ok";
    case TransportStatus::kConnectFailed: return "connect_failed";
    case TransportStatus::kTimeout: return "timeout";
    case TransportStatus::kClosed: return "closed";
    case TransportStatus::kMalformedReply: return "malformed_reply";
    case TransportStatus::kFrameTooLarge: return "frame_too_large";
    case TransportStatus::kRemoteError: return "remote_error";
    case TransportStatus::kInvalidHandle: return "invalid_handle";
  }
  return "unknown";
}

std::string EncodeFrame(MessageType type, const std::string& payload,
                        uint8_t version, uint16_t flags,
                        uint64_t request_id) {
  std::string out;
  out.reserve(FrameHeaderBytesFor(version) + payload.size());
  AppendU32(&out, kFrameMagic);
  AppendU8(&out, version);
  AppendU8(&out, static_cast<uint8_t>(type));
  AppendU16(&out, flags);
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32(out.data(), out.size());
  if (version >= 3) {
    // The request id sits after the CRC slot but is CRC-covered, so a
    // corrupted id can never route a reply to the wrong request.
    std::string id_bytes;
    AppendU64(&id_bytes, request_id);
    crc = Crc32(id_bytes.data(), id_bytes.size(), crc);
    crc = Crc32(payload.data(), payload.size(), crc);
    AppendU32(&out, crc);
    out += id_bytes;
  } else {
    crc = Crc32(payload.data(), payload.size(), crc);
    AppendU32(&out, crc);
  }
  out += payload;
  return out;
}

HeaderStatus DecodeHeader(const uint8_t* header, size_t max_frame_bytes,
                          FrameHeader* out) {
  ByteReader reader(header, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint8_t version = 0, type = 0;
  uint16_t flags = 0;
  uint32_t payload_len = 0, crc = 0;
  reader.ReadU32(&magic);
  reader.ReadU8(&version);
  reader.ReadU8(&type);
  reader.ReadU16(&flags);
  reader.ReadU32(&payload_len);
  reader.ReadU32(&crc);
  if (magic != kFrameMagic) return HeaderStatus::kBadMagic;
  if (static_cast<size_t>(payload_len) + kFrameHeaderBytes >
      max_frame_bytes) {
    return HeaderStatus::kTooLarge;
  }
  out->version = version;
  out->type = static_cast<MessageType>(type);
  out->flags = flags;
  out->payload_len = payload_len;
  out->crc32 = crc;
  return HeaderStatus::kOk;
}

void DecodeRequestId(const uint8_t* bytes, FrameHeader* out) {
  ByteReader reader(bytes, kRequestIdBytes);
  reader.ReadU64(&out->request_id);
}

bool FrameCrcMatches(const uint8_t* header, size_t header_len,
                     const std::string& payload) {
  // The header stores the CRC little-endian; reassemble explicitly so
  // the check is host-order independent.
  uint32_t stored = 0;
  ByteReader reader(header + 12, 4);
  reader.ReadU32(&stored);
  uint32_t actual = Crc32(header, 12);
  if (header_len > kFrameHeaderBytes) {
    actual = Crc32(header + kFrameHeaderBytes,
                   header_len - kFrameHeaderBytes, actual);
  }
  actual = Crc32(payload.data(), payload.size(), actual);
  return stored == actual;
}

std::string EncodeActRequest(uint64_t user_id, const nn::Tensor& obs,
                             uint64_t trace_id) {
  std::string out;
  AppendU64(&out, user_id);
  AppendU64(&out, trace_id);
  AppendTensor(&out, obs);
  return out;
}

std::string EncodeActRequestV1(uint64_t user_id, const nn::Tensor& obs) {
  std::string out;
  AppendU64(&out, user_id);
  AppendTensor(&out, obs);
  return out;
}

bool DecodeActRequest(const std::string& payload, uint8_t version,
                      uint64_t* user_id, uint64_t* trace_id,
                      nn::Tensor* obs) {
  ByteReader reader(payload.data(), payload.size());
  if (!reader.ReadU64(user_id)) return false;
  if (version >= 2) {
    if (!reader.ReadU64(trace_id)) return false;
  } else {
    *trace_id = 0;
  }
  if (!ReadTensor(&reader, obs)) return false;
  return reader.remaining() == 0;
}

std::string EncodeActReply(const serve::ServeReply& reply) {
  std::string out;
  AppendTensor(&out, reply.action);
  AppendU8(&out, reply.exec_clamped ? 1 : 0);
  AppendF64(&out, reply.value);
  AppendU32(&out, static_cast<uint32_t>(reply.batch_size));
  return out;
}

bool DecodeActReply(const std::string& payload, serve::ServeReply* reply) {
  ByteReader reader(payload.data(), payload.size());
  serve::ServeReply decoded;
  uint8_t clamped = 0;
  uint32_t batch_size = 0;
  if (!ReadTensor(&reader, &decoded.action)) return false;
  if (!reader.ReadU8(&clamped) || !reader.ReadF64(&decoded.value) ||
      !reader.ReadU32(&batch_size)) {
    return false;
  }
  if (reader.remaining() != 0) return false;
  decoded.exec_clamped = clamped != 0;
  decoded.batch_size = static_cast<int>(batch_size);
  *reply = std::move(decoded);
  return true;
}

std::string EncodeU64(uint64_t value) {
  std::string out;
  AppendU64(&out, value);
  return out;
}

bool DecodeU64(const std::string& payload, uint64_t* value) {
  ByteReader reader(payload.data(), payload.size());
  return reader.ReadU64(value) && reader.remaining() == 0;
}

std::string EncodePingReply(uint64_t nonce, uint8_t version) {
  std::string out;
  AppendU64(&out, nonce);
  AppendU8(&out, version);
  return out;
}

bool DecodePingReply(const std::string& payload, uint64_t* nonce,
                     uint8_t* version) {
  ByteReader reader(payload.data(), payload.size());
  return reader.ReadU64(nonce) && reader.ReadU8(version) &&
         reader.remaining() == 0;
}

std::string EncodeError(WireError code, const std::string& message) {
  std::string out;
  AppendU16(&out, static_cast<uint16_t>(code));
  const uint32_t len = static_cast<uint32_t>(
      message.size() > kMaxErrorMessageBytes ? kMaxErrorMessageBytes
                                             : message.size());
  AppendU32(&out, len);
  AppendBytes(&out, message.data(), len);
  return out;
}

bool DecodeError(const std::string& payload, WireError* code,
                 std::string* message) {
  ByteReader reader(payload.data(), payload.size());
  uint16_t raw_code = 0;
  uint32_t len = 0;
  if (!reader.ReadU16(&raw_code) || !reader.ReadU32(&len) ||
      len > kMaxErrorMessageBytes || !reader.ReadString(message, len)) {
    return false;
  }
  if (reader.remaining() != 0) return false;
  *code = static_cast<WireError>(raw_code);
  return true;
}

}  // namespace transport
}  // namespace sim2rec
