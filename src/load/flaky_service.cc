#include "load/flaky_service.h"

#include <chrono>
#include <thread>

#include "util/logging.h"

namespace sim2rec {
namespace load {

FlakyPolicyService::FlakyPolicyService(serve::PolicyService* inner,
                                       const FlakyConfig& config)
    : inner_(inner), config_(config) {
  S2R_CHECK(inner != nullptr);
  S2R_CHECK(config.fail_every_n >= 0);
  S2R_CHECK(config.delay_every_n >= 0);
  S2R_CHECK(config.delay_ms >= 0);
  S2R_CHECK(config.fail_end_session_every_n >= 0);
}

serve::ServeReply FlakyPolicyService::Act(uint64_t user_id,
                                          const nn::Tensor& obs) {
  const int64_t n = acts_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.delay_every_n > 0 && n % config_.delay_every_n == 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.delay_ms));
  }
  if (config_.fail_every_n > 0 && n % config_.fail_every_n == 0) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    throw TransientFault("injected fault on act #" + std::to_string(n));
  }
  return inner_->Act(user_id, obs);
}

void FlakyPolicyService::EndSession(uint64_t user_id) {
  const int64_t n = end_sessions_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.fail_end_session_every_n > 0 &&
      n % config_.fail_end_session_every_n == 0) {
    end_session_faults_.fetch_add(1, std::memory_order_relaxed);
    throw TransientFault("injected fault on end-session #" +
                         std::to_string(n));
  }
  inner_->EndSession(user_id);
}

FlakyStats FlakyPolicyService::stats() const {
  FlakyStats stats;
  stats.acts = acts_.load(std::memory_order_relaxed);
  stats.injected_faults = faults_.load(std::memory_order_relaxed);
  stats.injected_delays = delays_.load(std::memory_order_relaxed);
  stats.end_sessions = end_sessions_.load(std::memory_order_relaxed);
  stats.injected_end_session_faults =
      end_session_faults_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace load
}  // namespace sim2rec
