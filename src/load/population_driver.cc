#include "load/population_driver.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "load/flaky_service.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace sim2rec {
namespace load {
namespace {

/// Substream domain for per-tick spawn draws (user ids). Session
/// ordinals live in the low half of the id space, so the two domains
/// never collide.
constexpr uint64_t kSpawnDomain = uint64_t{1} << 63;

/// splitmix64 finalizer — the mixing step behind Rng seeding, reused
/// here for the order-independent request digest.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashDoubles(const double* values, size_t count, uint64_t h) {
  for (size_t i = 0; i < count; ++i) {
    uint64_t bits = 0;
    std::memcpy(&bits, &values[i], sizeof(bits));
    h = Mix64(h ^ bits);
  }
  return h;
}

}  // namespace

bool PopulationReport::Consistent() const {
  return sessions_started == sessions_finished + sessions_aborted +
                                 sessions_active_at_end &&
         sessions_finished ==
             sessions_ended_gracefully + sessions_abandoned;
}

PopulationDriver::PopulationDriver(serve::PolicyService* service,
                                   const PopulationDriverConfig& config)
    : service_(service),
      config_(config),
      arrivals_(config.arrival, config.seed ^ 0x4152525649564cULL),
      zipf_(config.user_space, config.zipf_s) {
  S2R_CHECK(service != nullptr);
  S2R_CHECK(config.ticks >= 1);
  S2R_CHECK(config.drain_ticks >= 0);
  S2R_CHECK(config.obs_dim >= 1);
  S2R_CHECK(config.action_dim >= 1);
  S2R_CHECK(config.min_steps >= 1);
  S2R_CHECK(config.max_steps >= config.min_steps);
  S2R_CHECK(config.max_think_ticks >= 0);
  S2R_CHECK(config.abandon_prob >= 0.0 && config.abandon_prob <= 1.0);
  S2R_CHECK(config.max_retries_per_step >= 0);
  S2R_CHECK(config.num_threads >= 1);
  S2R_CHECK(config.user_space >= 1);
  pool_ = std::make_unique<core::ThreadPool>(config.num_threads);
}

void PopulationDriver::SpawnArrivals(int tick, Rng& spawn_stream) {
  const int count = arrivals_.CountAt(tick);
  for (int i = 0; i < count; ++i) {
    if ((config_.max_active != 0 &&
         active_users_.size() >= config_.max_active) ||
        active_users_.size() >= config_.user_space) {
      ++report_.sessions_rejected;
      continue;
    }
    uint64_t user_id = zipf_.Sample(spawn_stream);
    // One live session per user (session affinity): on collision,
    // rehash to a fresh id rather than walking linearly. Zipf packs
    // the hot low-rank ids solid, so a +1 probe would traverse the
    // entire occupied prefix once the population is large (quadratic
    // at ~1M active); rehashing jumps uniformly, so expected probes
    // stay at 1/(1 - active/user_space). The (user_id, probe) pair
    // never repeats, so the walk always terminates. Deterministic
    // because the active set only changes at tick boundaries, on this
    // thread.
    for (uint64_t probe = 1; active_users_.count(user_id) != 0; ++probe) {
      user_id = Mix64(user_id + probe) % config_.user_space;
    }

    size_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = slots_.size();
      slots_.emplace_back();
    }
    SessionState& session = slots_[slot];
    session.live = true;
    session.user_id = user_id;
    session.ordinal = next_ordinal_++;
    session.rng = Rng(config_.seed).Substream(session.ordinal);
    session.steps_left =
        config_.min_steps +
        session.rng.UniformInt(config_.max_steps - config_.min_steps + 1);
    session.step_index = 0;
    session.abandon = session.rng.Bernoulli(config_.abandon_prob);
    session.next_due_tick = tick;
    session.retries = 0;
    session.has_pending_obs = false;
    session.last_ok = false;
    session.prev_action.assign(static_cast<size_t>(config_.action_dim),
                               0.0);
    session.pending_obs.assign(static_cast<size_t>(config_.obs_dim), 0.0);
    active_users_.emplace(user_id, slot);
    ++report_.sessions_started;
  }
  report_.peak_active =
      std::max(report_.peak_active,
               static_cast<uint64_t>(active_users_.size()));
}

void PopulationDriver::PrepareObs(SessionState& session) {
  for (int j = 0; j < config_.obs_dim; ++j) {
    session.pending_obs[j] = session.rng.Uniform(-1.0, 1.0);
  }
  if (config_.obs_feedback) {
    for (int j = 0; j < config_.obs_dim; ++j) {
      session.pending_obs[j] +=
          0.1 * std::tanh(session.prev_action[j % config_.action_dim]);
    }
  }
  session.has_pending_obs = true;
}

void PopulationDriver::FinishSession(size_t slot, bool aborted) {
  SessionState& session = slots_[slot];
  if (aborted) {
    ++report_.sessions_aborted;
  } else {
    ++report_.sessions_finished;
    if (session.abandon) {
      ++report_.sessions_abandoned;
    } else {
      ++report_.sessions_ended_gracefully;
    }
  }
  // Graceful and aborted sessions tell the server; abandoned ones walk
  // away and leave their server-side state to TTL expiry.
  if (aborted || !session.abandon) {
    try {
      service_->EndSession(session.user_id);
    } catch (const TransientFault&) {
      ++report_.end_session_failures;
    }
  }
  session.live = false;
  active_users_.erase(session.user_id);
  free_slots_.push_back(slot);
}

void PopulationDriver::AdvanceSession(int tick, size_t slot) {
  SessionState& session = slots_[slot];
  if (session.last_ok) {
    ++report_.requests_ok;
    session.has_pending_obs = false;
    session.retries = 0;
    ++session.step_index;
    --session.steps_left;
    if (session.steps_left == 0) {
      FinishSession(slot, /*aborted=*/false);
    } else {
      session.next_due_tick =
          tick + 1 + session.rng.UniformInt(config_.max_think_ticks + 1);
    }
    return;
  }
  ++report_.requests_failed;
  ++session.retries;
  if (session.retries > config_.max_retries_per_step) {
    FinishSession(slot, /*aborted=*/true);
  } else {
    ++report_.retries;
    session.next_due_tick = tick + 1;  // same observation, next tick
  }
}

PopulationReport PopulationDriver::Run() {
  S2R_CHECK_MSG(!ran_, "PopulationDriver::Run is single-use");
  ran_ = true;
  const int total_ticks = config_.ticks + config_.drain_ticks;
  Stopwatch stopwatch;

  std::vector<size_t> due;
  int tick = 0;
  for (; tick < total_ticks; ++tick) {
    if (tick >= config_.ticks && active_users_.empty()) break;
    if (tick < config_.ticks) {
      Rng spawn_stream = Rng(config_.seed).Substream(
          kSpawnDomain | static_cast<uint64_t>(tick));
      SpawnArrivals(tick, spawn_stream);
    }

    // Collect due sessions in slot order (deterministic) and draw their
    // observations on this thread, so workers touch no Rng at all.
    due.clear();
    for (size_t slot = 0; slot < slots_.size(); ++slot) {
      SessionState& session = slots_[slot];
      if (!session.live || session.next_due_tick > tick) continue;
      if (!session.has_pending_obs) PrepareObs(session);
      due.push_back(slot);
    }

    const int num_due = static_cast<int>(due.size());
    if (num_due > 0) {
      pool_->ParallelFor(num_due, [&](int i) {
        SessionState& session = slots_[due[static_cast<size_t>(i)]];
        nn::Tensor obs(1, config_.obs_dim, session.pending_obs);
        request_checksum_.fetch_add(
            HashDoubles(obs.data(), obs.size(),
                        Mix64(session.user_id) ^ Mix64(session.ordinal) ^
                            Mix64(static_cast<uint64_t>(
                                session.step_index))),
            std::memory_order_relaxed);
        // Deterministic nonzero request trace id — (session, step) is
        // unique for the whole run and independent of thread schedule,
        // so a wire/exemplar/span id can be matched back to the exact
        // request that produced it. Retries of a step reuse its id.
        const uint64_t trace_id =
            ((session.ordinal + 1) << 20) |
            (static_cast<uint64_t>(session.step_index) + 1);
        obs::TraceIdScope trace_scope(trace_id);
        try {
          const double start_us = obs::MonotonicMicros();
          const serve::ServeReply reply =
              service_->Act(session.user_id, obs);
          const double elapsed_us = obs::MonotonicMicros() - start_us;
          latency_.Record(elapsed_us);
          tick_latency_.Record(elapsed_us);
          session.last_ok = true;
          if (reply.exec_clamped) {
            exec_clamps_.fetch_add(1, std::memory_order_relaxed);
          }
          reply_checksum_.fetch_add(
              HashDoubles(reply.action.data(), reply.action.size(),
                          Mix64(session.user_id) ^
                              Mix64(static_cast<uint64_t>(
                                  session.step_index))),
              std::memory_order_relaxed);
          if (config_.obs_feedback) {
            for (int c = 0; c < config_.action_dim &&
                            c < reply.action.cols();
                 ++c) {
              session.prev_action[c] = reply.action(0, c);
            }
          }
        } catch (const TransientFault&) {
          session.last_ok = false;
        }
      });
      for (const size_t slot : due) AdvanceSession(tick, slot);
    }

    if (config_.record_timeline) {
      TickSample sample;
      sample.tick = tick;
      sample.rate = arrivals_.RateAt(tick);
      sample.arrivals = tick < config_.ticks ? arrivals_.CountAt(tick) : 0;
      sample.active = active_users_.size();
      sample.issued = static_cast<uint64_t>(num_due);
      uint64_t failed = 0;
      for (const size_t slot : due) {
        if (!slots_[slot].last_ok) ++failed;
      }
      sample.failed = failed;
      if (config_.shard_count_source) {
        sample.shards = config_.shard_count_source();
      }
      if (config_.queue_depth_source) {
        sample.queue_depth = config_.queue_depth_source();
      }
      if (config_.generation_source) {
        sample.generation = config_.generation_source();
      }
      sample.tick_p50_us = tick_latency_.Quantile(0.50);
      sample.tick_p99_us = tick_latency_.Quantile(0.99);
      report_.timeline.push_back(sample);
    }
    tick_latency_.Reset();
    if (config_.tick_hook) config_.tick_hook(tick);
  }

  report_.ticks_run = tick;
  report_.sessions_active_at_end = active_users_.size();
  report_.elapsed_seconds = stopwatch.ElapsedSeconds();
  const uint64_t issued = report_.requests_ok + report_.requests_failed;
  report_.req_per_sec =
      report_.elapsed_seconds > 0.0
          ? static_cast<double>(issued) / report_.elapsed_seconds
          : 0.0;
  report_.p50_us = latency_.QuantileUs(0.50);
  report_.p95_us = latency_.QuantileUs(0.95);
  report_.p99_us = latency_.QuantileUs(0.99);
  report_.mean_us = latency_.mean_us();
  report_.max_us = latency_.max_us();
  report_.request_checksum =
      request_checksum_.load(std::memory_order_relaxed);
  report_.reply_checksum = reply_checksum_.load(std::memory_order_relaxed);
  report_.exec_clamps = exec_clamps_.load(std::memory_order_relaxed);
  return report_;
}

}  // namespace load
}  // namespace sim2rec
