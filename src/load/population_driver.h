#ifndef SIM2REC_LOAD_POPULATION_DRIVER_H_
#define SIM2REC_LOAD_POPULATION_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/thread_pool.h"
#include "load/arrival.h"
#include "load/zipf.h"
#include "obs/metrics.h"
#include "serve/metrics.h"
#include "serve/policy_service.h"
#include "util/rng.h"

namespace sim2rec {
namespace load {

struct PopulationDriverConfig {
  /// Root seed. Every stochastic choice the driver makes — arrival
  /// counts, user ids, session lengths, think times, observation
  /// payloads — derives from Rng::Substream of this seed, so one seed +
  /// config reproduces the exact request sequence at any num_threads.
  uint64_t seed = 1;

  /// Spawn window: arrivals occur for ticks [0, ticks). The run then
  /// continues for up to drain_ticks more so in-flight sessions can
  /// finish (whatever is still active after that is reported, not lost).
  int ticks = 100;
  int drain_ticks = 0;

  ArrivalConfig arrival;

  /// User-id skew: ids are Zipf(zipf_s)-ranked over [0, user_space), so
  /// hot users hammer a few hash-ring shards the way real traffic does.
  /// zipf_s = 0 gives uniform ids. A sampled id already in an active
  /// session is deterministically rehashed to a free id (one live
  /// session per user — the serving stack's session-affinity
  /// contract). Keep user_space several times the expected peak
  /// population so the rehash terminates in O(1) expected probes.
  double zipf_s = 1.05;
  uint64_t user_space = uint64_t{1} << 20;

  /// Per-session step count, uniform in [min_steps, max_steps].
  int min_steps = 2;
  int max_steps = 8;
  /// Ticks between a session's steps, uniform in [1, 1 + max_think_ticks].
  int max_think_ticks = 2;
  /// Fraction of sessions that finish without EndSession (user walks
  /// away; the server-side session is left for TTL expiry / LRU
  /// eviction — the churn pressure the session store must absorb).
  double abandon_prob = 0.25;

  /// Request shapes; obs_dim must match the served agent.
  int obs_dim = 0;
  int action_dim = 1;

  /// Mix the previous reply's action into the next observation (a true
  /// content closed loop). Off by default: with feedback on, request
  /// bytes depend on replies, so thread-count invariance additionally
  /// requires the service itself to be reply-deterministic under
  /// within-tick reordering (no LRU eviction pressure, TTL disabled,
  /// fixed topology). With feedback off the request sequence is
  /// invariant unconditionally — eviction, expiry and resharding only
  /// change replies, never requests.
  bool obs_feedback = false;

  /// A step whose Act throws TransientFault is retried on the next tick
  /// with the identical observation, up to this many retries; beyond
  /// that the session is aborted (EndSession best-effort) and counted.
  int max_retries_per_step = 2;

  /// Worker threads issuing requests within a tick (the tick boundary
  /// is a barrier, which is what makes the schedule thread-invariant).
  int num_threads = 1;

  /// Hard cap on concurrently active sessions; arrivals beyond it are
  /// rejected and counted. 0 = uncapped.
  uint64_t max_active = 0;

  /// Called after every tick's lifecycle work (autoscaler polls,
  /// mid-run reshards in tests). Runs on the driving thread with no
  /// requests in flight.
  std::function<void(int tick)> tick_hook;
  /// Sampled into the per-tick timeline when set (e.g. router shard
  /// count and summed shard queue depth).
  std::function<int()> shard_count_source;
  std::function<double()> queue_depth_source;
  /// Checkpoint generation currently being served (a
  /// serve::CheckpointWatcher's generation()); sampled per tick so the
  /// hot-swap bench's timeline shows exactly which requests each
  /// generation answered. 0 rows when unset.
  std::function<uint64_t()> generation_source;

  bool record_timeline = true;
};

/// One row of the per-tick timeline (the shard-count-over-time series
/// BENCH_serve_scale.json plots).
struct TickSample {
  int tick = 0;
  double rate = 0.0;      // shaped arrival rate at this tick
  int arrivals = 0;       // realized spawns
  uint64_t active = 0;    // sessions live after lifecycle work
  uint64_t issued = 0;    // requests attempted this tick
  uint64_t failed = 0;    // of which faulted
  int shards = 0;         // shard_count_source (0 when unset)
  double queue_depth = 0.0;
  uint64_t generation = 0;  // generation_source (0 when unset)
  double tick_p50_us = 0.0;  // client-observed, this tick only
  double tick_p99_us = 0.0;
};

struct PopulationReport {
  uint64_t sessions_started = 0;
  uint64_t sessions_finished = 0;  // completed all steps
  uint64_t sessions_ended_gracefully = 0;  // finished + EndSession sent
  uint64_t sessions_abandoned = 0;         // finished, no EndSession
  uint64_t sessions_aborted = 0;   // gave up after repeated faults
  uint64_t sessions_active_at_end = 0;
  uint64_t sessions_rejected = 0;  // max_active cap hit
  uint64_t peak_active = 0;

  uint64_t requests_ok = 0;
  uint64_t requests_failed = 0;
  uint64_t retries = 0;
  uint64_t end_session_failures = 0;
  int64_t exec_clamps = 0;

  int ticks_run = 0;
  double elapsed_seconds = 0.0;
  double req_per_sec = 0.0;

  // Client-observed Act latency over the whole run.
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double mean_us = 0.0, max_us = 0.0;

  /// Order-independent digest over every issued request
  /// (user id, session ordinal, step, observation bits): equal across
  /// thread counts whenever the schedule is — the reproducibility
  /// check bench_serve_scale and tests/load_test.cc assert.
  uint64_t request_checksum = 0;
  /// Same digest over replies (action bits). Thread-invariant only
  /// under the stricter conditions obs_feedback documents.
  uint64_t reply_checksum = 0;

  std::vector<TickSample> timeline;

  /// started == finished + aborted + active_at_end, and
  /// finished == ended_gracefully + abandoned. False means the driver
  /// lost track of a session — the accounting invariant fault-injection
  /// tests pin.
  bool Consistent() const;
};

/// Closed-loop population load generator for any serve::PolicyService —
/// the in-process ServeRouter, a single InferenceServer, or a
/// transport::PolicyClient against a remote server.
///
/// Time advances in ticks. Each tick: (1) the arrival process spawns
/// new sessions with Zipf-skewed user ids; (2) every session whose next
/// step is due gets its observation generated from its own
/// Rng::Substream; (3) worker threads issue all due requests
/// concurrently (closed loop: a session never has two requests in
/// flight, and its next step waits for this reply plus a think-time
/// gap); (4) after the barrier, session lifecycle runs serially —
/// completions, EndSession/abandon churn, fault retries. Because every
/// random draw happens on the driving thread against per-session
/// substreams and workers only execute a prebuilt request list, the
/// request sequence is a pure function of (seed, config) — num_threads
/// changes wall-clock interleaving, never content (request_checksum).
///
/// Faults: a service throwing TransientFault (see FlakyPolicyService)
/// fails that request only; the step retries next tick with the same
/// observation, then the session aborts. Any other exception
/// propagates — the driver only absorbs declared-transient failures.
class PopulationDriver {
 public:
  PopulationDriver(serve::PolicyService* service,
                   const PopulationDriverConfig& config);

  /// Executes the run. Call once.
  PopulationReport Run();

 private:
  struct SessionState {
    uint64_t user_id = 0;
    uint64_t ordinal = 0;  // global spawn index (substream id)
    Rng rng{0};            // per-session draw stream
    bool live = false;
    int steps_left = 0;
    int step_index = 0;    // steps completed so far
    int next_due_tick = 0;
    int retries = 0;
    bool abandon = false;
    bool has_pending_obs = false;
    bool last_ok = false;
    std::vector<double> pending_obs;   // obs_dim, reused across retries
    std::vector<double> prev_action;   // action_dim (feedback mix-in)
  };

  void SpawnArrivals(int tick, Rng& spawn_stream);
  void PrepareObs(SessionState& session);
  /// Finishes or reschedules one session after its due request ran.
  void AdvanceSession(int tick, size_t slot);
  void FinishSession(size_t slot, bool aborted);

  serve::PolicyService* service_;
  PopulationDriverConfig config_;
  ArrivalProcess arrivals_;
  ZipfSampler zipf_;
  std::unique_ptr<core::ThreadPool> pool_;

  std::vector<SessionState> slots_;
  std::vector<size_t> free_slots_;
  std::unordered_map<uint64_t, size_t> active_users_;  // user -> slot
  uint64_t next_ordinal_ = 0;

  PopulationReport report_;
  serve::LatencyHistogram latency_;
  obs::LogHistogram tick_latency_;
  std::atomic<uint64_t> request_checksum_{0};
  std::atomic<uint64_t> reply_checksum_{0};
  std::atomic<int64_t> exec_clamps_{0};
  bool ran_ = false;
};

}  // namespace load
}  // namespace sim2rec

#endif  // SIM2REC_LOAD_POPULATION_DRIVER_H_
