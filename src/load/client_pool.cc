#include "load/client_pool.h"

#include "util/logging.h"

namespace sim2rec {
namespace load {

ClientPool::ClientPool(const ClientPoolConfig& config) {
  S2R_CHECK_MSG(config.size > 0, "ClientPool needs at least one client");
  clients_.reserve(static_cast<size_t>(config.size));
  for (int i = 0; i < config.size; ++i) {
    transport::PolicyClientConfig client_config;
    client_config.endpoint = config.endpoint;
    client_config.host = config.host;
    client_config.port = config.port;
    client_config.limits = config.limits;
    clients_.push_back(
        std::make_unique<transport::PolicyClient>(client_config));
  }
}

ClientPool::ClientPool(int port, int size) {
  S2R_CHECK_MSG(size > 0, "ClientPool needs at least one client");
  clients_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    transport::PolicyClientConfig config;
    config.port = port;
    clients_.push_back(std::make_unique<transport::PolicyClient>(config));
  }
}

serve::ServeReply ClientPool::Act(uint64_t user_id, const nn::Tensor& obs) {
  return Next()->Act(user_id, obs);
}

void ClientPool::EndSession(uint64_t user_id) {
  Next()->EndSession(user_id);
}

transport::PolicyClient* ClientPool::Next() {
  const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
  return clients_[i % clients_.size()].get();
}

}  // namespace load
}  // namespace sim2rec
