#ifndef SIM2REC_LOAD_ARRIVAL_H_
#define SIM2REC_LOAD_ARRIVAL_H_

#include <cstdint>

#include "util/rng.h"

namespace sim2rec {
namespace load {

/// Shape of the session-arrival rate over the run.
enum class ArrivalKind {
  kSteady,   // constant base_rate
  kDiurnal,  // sine wave around base_rate (day/night traffic)
  kBurst,    // base_rate with a multiplied spike window (flash crowd)
};

const char* ArrivalKindName(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kSteady;
  /// Mean new sessions per tick (the diurnal/burst shapes modulate it).
  double base_rate = 100.0;

  /// kDiurnal: rate(t) = base * (1 + amplitude * sin(2*pi*t / period)),
  /// amplitude in [0, 1], clamped at 0 so the trough never goes negative.
  double diurnal_amplitude = 0.5;
  int diurnal_period_ticks = 48;

  /// kBurst: rate(t) = base * burst_multiplier inside
  /// [burst_start_tick, burst_start_tick + burst_duration_ticks).
  double burst_multiplier = 4.0;
  int burst_start_tick = 0;
  int burst_duration_ticks = 0;

  /// Sample arrival counts from Poisson(rate(t)); false rounds the rate
  /// deterministically (carrying the fractional remainder across ticks,
  /// so long-run volume still matches the rate exactly).
  bool poisson = true;
};

/// Deterministic arrival-count generator: CountAt(t) is a pure function
/// of (seed, config, t) — it draws from Rng(seed).Substream(t), never
/// from shared generator state — so the population driver can ask for
/// any tick in any order (or from any thread) and a given seed + config
/// always produces the same traffic trace.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalConfig& config, uint64_t seed);

  /// Expected arrivals at tick t (the shaped rate, before sampling).
  double RateAt(int tick) const;

  /// Realized arrivals at tick t. Poisson-sampled around RateAt(t)
  /// (Knuth for small rates, normal approximation above 64 — both
  /// deterministic in the tick substream), or deterministic rounding
  /// with carried remainder when config.poisson is false.
  int CountAt(int tick) const;

  const ArrivalConfig& config() const { return config_; }

 private:
  ArrivalConfig config_;
  uint64_t seed_ = 0;
};

}  // namespace load
}  // namespace sim2rec

#endif  // SIM2REC_LOAD_ARRIVAL_H_
