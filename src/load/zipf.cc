#include "load/zipf.h"

#include <cmath>

#include "util/logging.h"

namespace sim2rec {
namespace load {

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s), theta_(s) {
  S2R_CHECK(n >= 1);
  S2R_CHECK(s >= 0.0);
  zetan_ = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    zetan_ += std::pow(static_cast<double>(i), -theta_);
  }
  // With theta == 1 the closed form below divides by zero; nudge just
  // off the singularity (indistinguishable for sampling purposes).
  if (std::abs(theta_ - 1.0) < 1e-9) theta_ = 1.0 + 1e-9;
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 =
      n_ >= 2 ? 1.0 + std::pow(2.0, -theta_) : 1.0;
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.Uniform();
  if (n_ == 1 || s_ == 0.0) {
    // Uniform fallback keeps the one-draw-per-sample contract.
    uint64_t k = static_cast<uint64_t>(u * static_cast<double>(n_));
    return k >= n_ ? n_ - 1 : k;
  }
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double k =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(k);
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace load
}  // namespace sim2rec
