#ifndef SIM2REC_LOAD_FLAKY_SERVICE_H_
#define SIM2REC_LOAD_FLAKY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "serve/policy_service.h"

namespace sim2rec {
namespace load {

/// The failure a fault-injecting service throws in place of a reply.
/// serve::PolicyService has no error channel by design (a reply is
/// always computable in a healthy stack), so injected faults surface as
/// this exception: the PopulationDriver catches it and books the
/// request as failed, and transport::PolicyServer converts any
/// exception from the fronted service into a kError(kInternal) frame —
/// which is exactly how a client sees a sick remote shard.
class TransientFault : public std::runtime_error {
 public:
  explicit TransientFault(const std::string& what)
      : std::runtime_error(what) {}
};

struct FlakyConfig {
  /// Throw TransientFault on every nth Act (1 = every request, 0 = never).
  int fail_every_n = 0;
  /// Sleep delay_ms before forwarding every nth Act (0 = never) — long
  /// enough delays trip client/server request deadlines, which is how
  /// timeout handling is exercised without a real slow backend.
  int delay_every_n = 0;
  int delay_ms = 0;
  /// Also throw on every nth EndSession (0 = never). Off by default:
  /// most tests want session teardown reliable so accounting checks
  /// isolate Act-path failures.
  int fail_end_session_every_n = 0;
};

struct FlakyStats {
  int64_t acts = 0;             // Act attempts seen (faulted or not)
  int64_t injected_faults = 0;  // TransientFaults thrown from Act
  int64_t injected_delays = 0;
  int64_t end_sessions = 0;
  int64_t injected_end_session_faults = 0;
};

/// Fault-injection decorator over any serve::PolicyService: counts
/// requests and, on a deterministic every-nth schedule, delays or fails
/// them. Used by tests/load_test.cc (driver survives a flaky in-process
/// router) and tests/transport_test.cc (PolicyClient survives a flaky
/// remote service: injected throws become typed kRemoteError replies,
/// injected delays become timeouts).
///
/// The schedule is counter-based, not random: every nth call across all
/// threads faults. Under concurrency *which* logical request lands on
/// the nth slot depends on interleaving, but the *number* of injected
/// faults per N requests is exact — the invariant accounting tests pin.
/// Thread-safe to the same degree as the wrapped service.
class FlakyPolicyService : public serve::PolicyService {
 public:
  FlakyPolicyService(serve::PolicyService* inner, const FlakyConfig& config);

  serve::ServeReply Act(uint64_t user_id, const nn::Tensor& obs) override;
  void EndSession(uint64_t user_id) override;

  FlakyStats stats() const;

 private:
  serve::PolicyService* inner_;
  FlakyConfig config_;
  std::atomic<int64_t> acts_{0};
  std::atomic<int64_t> faults_{0};
  std::atomic<int64_t> delays_{0};
  std::atomic<int64_t> end_sessions_{0};
  std::atomic<int64_t> end_session_faults_{0};
};

}  // namespace load
}  // namespace sim2rec

#endif  // SIM2REC_LOAD_FLAKY_SERVICE_H_
