#ifndef SIM2REC_LOAD_ZIPF_H_
#define SIM2REC_LOAD_ZIPF_H_

#include <cstdint>

#include "util/rng.h"

namespace sim2rec {
namespace load {

/// Bounded Zipf(s) sampler over [0, n): P(k) proportional to
/// 1/(k+1)^s — the standard model for hot-key skew in serving traffic
/// (a few users dominate the request stream, the tail is long). Used by
/// the population driver to pick user ids so the consistent-hash ring
/// sees realistic hot shards instead of uniformly spread load.
///
/// Implementation: the YCSB-style closed-form inverse (Gray et al.,
/// "Quickly generating billion-record synthetic databases"): one O(n)
/// scalar harmonic-sum pass at construction, then O(1) per sample with
/// no tables — which is what keeps a 1M-key population cheap to skew.
/// Draws consume exactly one Uniform() from the caller's Rng, so a
/// fixed Rng substream yields a fixed key sequence.
class ZipfSampler {
 public:
  /// `n` >= 1 keys, exponent `s` >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(uint64_t n, double s);

  /// Next key in [0, n), rank 0 being the hottest.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_ = 1;
  double s_ = 0.0;
  double zetan_ = 1.0;   // sum_{i=1..n} i^-s
  double theta_ = 0.0;   // == s (YCSB naming kept local)
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace load
}  // namespace sim2rec

#endif  // SIM2REC_LOAD_ZIPF_H_
