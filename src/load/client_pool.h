#ifndef SIM2REC_LOAD_CLIENT_POOL_H_
#define SIM2REC_LOAD_CLIENT_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/policy_service.h"
#include "transport/limits.h"
#include "transport/policy_client.h"

namespace sim2rec {
namespace load {

struct ClientPoolConfig {
  /// Where every pooled client dials. When `endpoint` is non-empty it
  /// wins (any scheme transport::Dial understands — "transport://" TCP
  /// or "shm://" lane group); otherwise host/port name a TCP server.
  std::string endpoint;
  std::string host = "127.0.0.1";
  int port = 0;
  /// Number of pooled connections.
  int size = 4;
  /// Shared framing/deadline bounds for every pooled client.
  transport::Limits limits;
};

/// Fans any number of driver threads out over a fixed pool of
/// transport::PolicyClient connections, round-robin per request. Each
/// client serializes its own wire round trips internally, so the pool
/// as a whole is safe from any number of threads — this is the seam
/// the population driver uses to push a load run through the real
/// transport instead of in-process calls, without the driver knowing
/// which lane (TCP or shm) carries the frames.
class ClientPool : public serve::PolicyService {
 public:
  explicit ClientPool(const ClientPoolConfig& config);
  /// Loopback-TCP convenience used by benches: pool of `size` clients
  /// against 127.0.0.1:port.
  ClientPool(int port, int size);

  serve::ServeReply Act(uint64_t user_id, const nn::Tensor& obs) override;
  void EndSession(uint64_t user_id) override;

  /// Direct access for callers that want the async tier of one pooled
  /// client (benches pipelining through a single connection).
  transport::PolicyClient* client(size_t i) { return clients_[i].get(); }
  size_t size() const { return clients_.size(); }

 private:
  transport::PolicyClient* Next();

  std::vector<std::unique_ptr<transport::PolicyClient>> clients_;
  std::atomic<size_t> next_{0};
};

}  // namespace load
}  // namespace sim2rec

#endif  // SIM2REC_LOAD_CLIENT_POOL_H_
