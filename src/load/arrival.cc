#include "load/arrival.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sim2rec {
namespace load {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Poisson(rate) draw from `rng`. Knuth's product method is exact but
/// O(rate); above the cutoff the normal approximation (continuity
/// corrected, clamped at 0) is indistinguishable for load-generation
/// purposes and O(1).
int PoissonDraw(double rate, Rng& rng) {
  if (rate <= 0.0) return 0;
  if (rate < 64.0) {
    const double limit = std::exp(-rate);
    double product = rng.Uniform();
    int count = 0;
    while (product > limit) {
      product *= rng.Uniform();
      ++count;
    }
    return count;
  }
  const double draw = rate + std::sqrt(rate) * rng.Normal();
  return static_cast<int>(std::max(0.0, std::floor(draw + 0.5)));
}

}  // namespace

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kSteady: return "steady";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kBurst: return "burst";
  }
  return "unknown";
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {
  S2R_CHECK(config.base_rate >= 0.0);
  S2R_CHECK(config.diurnal_amplitude >= 0.0 &&
            config.diurnal_amplitude <= 1.0);
  S2R_CHECK(config.diurnal_period_ticks >= 1);
  S2R_CHECK(config.burst_multiplier >= 0.0);
  S2R_CHECK(config.burst_duration_ticks >= 0);
}

double ArrivalProcess::RateAt(int tick) const {
  double rate = config_.base_rate;
  switch (config_.kind) {
    case ArrivalKind::kSteady:
      break;
    case ArrivalKind::kDiurnal: {
      const double phase = 2.0 * kPi * static_cast<double>(tick) /
                           static_cast<double>(config_.diurnal_period_ticks);
      rate *= 1.0 + config_.diurnal_amplitude * std::sin(phase);
      break;
    }
    case ArrivalKind::kBurst:
      if (tick >= config_.burst_start_tick &&
          tick < config_.burst_start_tick + config_.burst_duration_ticks) {
        rate *= config_.burst_multiplier;
      }
      break;
  }
  return std::max(0.0, rate);
}

int ArrivalProcess::CountAt(int tick) const {
  const double rate = RateAt(tick);
  if (config_.poisson) {
    Rng stream = Rng(seed_).Substream(static_cast<uint64_t>(tick));
    return PoissonDraw(rate, stream);
  }
  // Deterministic rounding with carried remainder: floor(cum(t)) -
  // floor(cum(t-1)) where cum is the running rate integral, so the
  // realized totals track the shaped rate without sampling noise.
  double cum = 0.0;
  for (int t = 0; t < tick; ++t) cum += RateAt(t);
  const double prev = std::floor(cum);
  cum += rate;
  return static_cast<int>(std::floor(cum) - prev);
}

}  // namespace load
}  // namespace sim2rec
