#include "rl/rollout.h"

#include <algorithm>

namespace sim2rec {
namespace rl {

double Rollout::MaskSum() const {
  double sum = 0.0;
  for (const auto& step : mask) {
    for (double m : step) sum += m;
  }
  return sum;
}

double Rollout::MeanReturn() const {
  if (num_users == 0) return 0.0;
  std::vector<double> totals(num_users, 0.0);
  for (int t = 0; t < num_steps; ++t) {
    for (int i = 0; i < num_users; ++i) {
      const double m = mask.empty() ? 1.0 : mask[t][i];
      totals[i] += rewards[t][i] * m;
    }
  }
  double sum = 0.0;
  for (double v : totals) sum += v;
  return sum / num_users;
}

void ComputeGae(Rollout* rollout, double gamma, double lambda) {
  const int t_max = rollout->num_steps;
  const int n = rollout->num_users;
  rollout->advantages.assign(t_max, std::vector<double>(n, 0.0));
  rollout->returns.assign(t_max, std::vector<double>(n, 0.0));
  rollout->mask.assign(t_max, std::vector<double>(n, 0.0));

  for (int i = 0; i < n; ++i) {
    // Valid until (and including) the first done step.
    int first_done = t_max;  // exclusive of the step itself
    for (int t = 0; t < t_max; ++t) {
      rollout->mask[t][i] = 1.0;
      if (rollout->dones[t][i]) {
        first_done = t;
        break;
      }
    }
    double gae = 0.0;
    const int last_valid = std::min(first_done, t_max - 1);
    for (int t = last_valid; t >= 0; --t) {
      const bool terminal = rollout->dones[t][i] != 0;
      const double next_value =
          terminal ? 0.0
                   : (t == t_max - 1 ? rollout->last_values[i]
                                     : rollout->values[t + 1][i]);
      const double delta = rollout->rewards[t][i] + gamma * next_value -
                           rollout->values[t][i];
      gae = delta + gamma * lambda * (terminal ? 0.0 : gae);
      rollout->advantages[t][i] = gae;
      rollout->returns[t][i] = gae + rollout->values[t][i];
    }
  }
}

Rollout CollectRollout(envs::GroupBatchEnv& env, Agent& agent,
                       int num_steps, Rng& rng) {
  S2R_CHECK(agent.obs_dim() == env.obs_dim());
  S2R_CHECK(agent.action_dim() == env.action_dim());
  const int t_max = std::min(num_steps, env.horizon());
  const int n = env.num_users();

  Rollout rollout;
  rollout.num_steps = t_max;
  rollout.num_users = n;

  agent.BeginEpisode(n);
  nn::Tensor obs = env.Reset(rng);
  for (int t = 0; t < t_max; ++t) {
    Agent::StepOutput step = agent.Step(obs, rng, /*deterministic=*/false);
    envs::StepResult result = env.Step(step.actions, rng);

    rollout.obs.push_back(obs);
    rollout.actions.push_back(step.actions);
    rollout.values.push_back(step.values);
    rollout.log_probs.push_back(step.log_probs);
    rollout.rewards.push_back(result.rewards);
    rollout.dones.push_back(result.dones);

    obs = result.next_obs;
    if (result.horizon_reached) {
      rollout.num_steps = t + 1;
      break;
    }
  }
  rollout.last_obs = obs;
  rollout.last_values = agent.Values(obs);
  return rollout;
}

double EvaluateAgentReturn(envs::GroupBatchEnv& env, Agent& agent,
                           int episodes, Rng& rng, bool deterministic) {
  S2R_CHECK(episodes >= 1);
  double total = 0.0;
  for (int e = 0; e < episodes; ++e) {
    const int n = env.num_users();
    agent.BeginEpisode(n);
    nn::Tensor obs = env.Reset(rng);
    std::vector<double> returns(n, 0.0);
    std::vector<uint8_t> finished(n, 0);
    for (int t = 0; t < env.horizon(); ++t) {
      Agent::StepOutput step = agent.Step(obs, rng, deterministic);
      envs::StepResult result = env.Step(step.actions, rng);
      for (int i = 0; i < n; ++i) {
        if (!finished[i]) returns[i] += result.rewards[i];
        if (result.dones[i]) finished[i] = 1;
      }
      obs = result.next_obs;
      if (result.horizon_reached) break;
    }
    double mean = 0.0;
    for (double r : returns) mean += r;
    total += mean / n;
  }
  return total / episodes;
}

}  // namespace rl
}  // namespace sim2rec
