#include "rl/ppo.h"

#include <cmath>

#include "nn/ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sim2rec {
namespace rl {
namespace {

/// Flattens [T][N] per-step vectors into a [(T*N) x 1] tensor, t-major —
/// matching Agent::ForwardRollout ordering.
nn::Tensor FlattenTMajor(const std::vector<std::vector<double>>& data) {
  const int t_max = static_cast<int>(data.size());
  S2R_CHECK(t_max > 0);
  const int n = static_cast<int>(data[0].size());
  nn::Tensor out(t_max * n, 1);
  for (int t = 0; t < t_max; ++t) {
    for (int i = 0; i < n; ++i) out(t * n + i, 0) = data[t][i];
  }
  return out;
}

/// Masked mean: sum(x * mask) / sum(mask).
nn::Var MaskedMean(nn::Var x, nn::Var mask, double mask_sum) {
  S2R_CHECK(mask_sum > 0.0);
  return nn::ScaleV(nn::SumV(nn::MulV(x, mask)), 1.0 / mask_sum);
}

}  // namespace

PpoTrainer::PpoTrainer(Agent* agent, const PpoConfig& config)
    : agent_(agent), config_(config) {
  S2R_CHECK(agent != nullptr);
  optimizer_ = std::make_unique<nn::Adam>(agent->TrainableParameters(),
                                          config.learning_rate);
}

PpoTrainer::UpdateStats PpoTrainer::Update(Rollout* rollout) {
  S2R_CHECK(rollout != nullptr);
  S2R_CHECK(rollout->num_steps > 0);
  S2R_TRACE_SPAN("ppo/update");
  if (config_.reward_scale != 1.0) {
    for (auto& step : rollout->rewards) {
      for (double& r : step) r *= config_.reward_scale;
    }
  }
  ComputeGae(rollout, config_.gamma, config_.gae_lambda);

  UpdateStats stats;
  stats.mean_return = rollout->MeanReturn() / config_.reward_scale;

  const double mask_sum = rollout->MaskSum();
  if (mask_sum <= 0.0) return stats;

  nn::Tensor old_log_probs = FlattenTMajor(rollout->log_probs);
  nn::Tensor advantages = FlattenTMajor(rollout->advantages);
  nn::Tensor returns = FlattenTMajor(rollout->returns);
  nn::Tensor mask_t = FlattenTMajor(rollout->mask);

  if (config_.normalize_advantages) {
    // Masked mean/std normalization.
    double mean = 0.0;
    for (int i = 0; i < advantages.size(); ++i)
      mean += advantages[i] * mask_t[i];
    mean /= mask_sum;
    double var = 0.0;
    for (int i = 0; i < advantages.size(); ++i) {
      const double d = (advantages[i] - mean) * mask_t[i];
      var += d * d;
    }
    const double stddev = std::sqrt(var / mask_sum) + 1e-8;
    for (int i = 0; i < advantages.size(); ++i) {
      advantages[i] = (advantages[i] - mean) / stddev * mask_t[i];
    }
  }

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    nn::Tape tape;
    Agent::SequenceForward forward = agent_->ForwardRollout(tape, *rollout);

    nn::Var old_lp = tape.Constant(old_log_probs);
    nn::Var adv = tape.Constant(advantages);
    nn::Var ret = tape.Constant(returns);
    nn::Var mask = tape.Constant(mask_t);

    nn::Var ratio = nn::ExpV(nn::SubV(forward.log_probs, old_lp));
    nn::Var surrogate1 = nn::MulV(ratio, adv);
    nn::Var surrogate2 = nn::MulV(
        nn::ClipV(ratio, 1.0 - config_.clip_ratio,
                  1.0 + config_.clip_ratio),
        adv);
    nn::Var policy_loss =
        nn::NegV(MaskedMean(nn::MinV(surrogate1, surrogate2), mask,
                            mask_sum));
    nn::Var value_loss = MaskedMean(
        nn::SquareV(nn::SubV(forward.values, ret)), mask, mask_sum);
    nn::Var entropy = MaskedMean(forward.entropy, mask, mask_sum);

    nn::Var loss = nn::SubV(
        nn::AddV(policy_loss,
                 nn::ScaleV(value_loss, config_.value_coef)),
        nn::ScaleV(entropy, config_.entropy_coef));

    // Approximate KL for early stopping, from current values.
    double approx_kl = 0.0;
    {
      const nn::Tensor& new_lp = forward.log_probs.value();
      for (int i = 0; i < new_lp.size(); ++i) {
        approx_kl += (old_log_probs[i] - new_lp[i]) * mask_t[i];
      }
      approx_kl /= mask_sum;
    }
    if (config_.target_kl > 0.0 && epoch > 0 &&
        approx_kl > config_.target_kl) {
      break;
    }

    optimizer_->ZeroGrad();
    tape.Backward(loss);
    stats.grad_norm =
        nn::ClipGradNorm(agent_->TrainableParameters(), config_.grad_clip);
    optimizer_->Step();

    stats.policy_loss = policy_loss.value()(0, 0);
    stats.value_loss = value_loss.value()(0, 0);
    stats.entropy = entropy.value()(0, 0);
    stats.approx_kl = approx_kl;
    stats.epochs_run = epoch + 1;
  }
  S2R_COUNT("ppo.updates", 1);
  S2R_GAUGE_SET("ppo.policy_loss", stats.policy_loss);
  S2R_GAUGE_SET("ppo.value_loss", stats.value_loss);
  S2R_GAUGE_SET("ppo.entropy", stats.entropy);
  S2R_GAUGE_SET("ppo.approx_kl", stats.approx_kl);
  return stats;
}

}  // namespace rl
}  // namespace sim2rec
