#include "rl/parallel_rollout.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sim2rec {
namespace rl {
namespace {

/// Salt for deriving the per-call substream root from the caller's rng
/// (advances the caller's stream so successive Collect calls differ).
constexpr uint64_t kShardStreamSalt = 0x70617261;  // "para"

}  // namespace

Rollout ParallelRolloutCollector::Collect(
    const std::vector<RolloutShard>& shards, Agent& agent, int num_steps,
    Rng& rng) const {
  Rollout rollout;
  if (shards.empty()) return rollout;  // empty group: nothing to collect
  S2R_TRACE_SPAN("rollout/collect");

  const int num_shards = static_cast<int>(shards.size());
  const int obs_dim = agent.obs_dim();
  const int act_dim = agent.action_dim();
  int horizon = shards[0].env->horizon();
  for (int k = 0; k < num_shards; ++k) {
    envs::GroupBatchEnv* env = shards[k].env;
    S2R_CHECK(env != nullptr);
    S2R_CHECK(env->obs_dim() == obs_dim);
    S2R_CHECK(env->action_dim() == act_dim);
    S2R_CHECK_MSG(env->horizon() == horizon,
                  "parallel shards must share one horizon");
    for (int j = 0; j < k; ++j) {
      S2R_CHECK_MSG(shards[j].env != env,
                    "parallel shards must not alias one environment");
    }
  }

  // Canonical row layout: shard k owns rows [offset[k], offset[k+1]).
  std::vector<int> offsets(num_shards + 1, 0);
  for (int k = 0; k < num_shards; ++k) {
    offsets[k + 1] = offsets[k] + shards[k].env->num_users();
  }
  const int n = offsets[num_shards];
  const int t_max = std::min(num_steps, horizon);
  S2R_CHECK(t_max > 0 && n > 0);

  // Per-shard substreams: pure in (rng state at entry, shard index) so
  // the decomposition is identical for every thread count. The serial
  // Split advances the caller's rng, separating successive calls.
  Rng stream_root = rng.Split(kShardStreamSalt);
  std::vector<Rng> shard_rngs;
  shard_rngs.reserve(num_shards);
  for (int k = 0; k < num_shards; ++k) {
    shard_rngs.push_back(stream_root.Substream(k));
  }

  const auto parallel_for = [this](int count,
                                   const std::function<void(int)>& fn) {
    if (pool_ != nullptr) {
      pool_->ParallelFor(count, fn);
    } else {
      for (int i = 0; i < count; ++i) fn(i);
    }
  };

  rollout.num_users = n;
  agent.BeginEpisode(n);

  // Reset every shard with its own stream, merge in shard order.
  std::vector<nn::Tensor> shard_obs(num_shards);
  parallel_for(num_shards, [&](int k) {
    if (shards[k].on_reset) shards[k].on_reset(shards[k].env, shard_rngs[k]);
    shard_obs[k] = shards[k].env->Reset(shard_rngs[k]);
  });
  nn::Tensor obs = nn::VStack(shard_obs);

  std::vector<envs::StepResult> results(num_shards);
  for (int t = 0; t < t_max; ++t) {
    // Serial, canonical-order action sampling on the caller's rng.
    Agent::StepOutput step = agent.Step(obs, rng, /*deterministic=*/false);

    parallel_for(num_shards, [&](int k) {
      obs::ScopedTimerUs shard_timer("rollout.shard_step_us");
      const nn::Tensor actions =
          step.actions.SliceRows(offsets[k], offsets[k + 1]);
      results[k] = shards[k].env->Step(actions, shard_rngs[k]);
    });

    envs::StepResult merged;
    merged.rewards.reserve(n);
    merged.dones.reserve(n);
    std::vector<nn::Tensor> next_parts;
    next_parts.reserve(num_shards);
    merged.horizon_reached = results[0].horizon_reached;
    for (int k = 0; k < num_shards; ++k) {
      S2R_CHECK_MSG(results[k].horizon_reached == merged.horizon_reached,
                    "parallel shards diverged on horizon_reached");
      merged.rewards.insert(merged.rewards.end(),
                            results[k].rewards.begin(),
                            results[k].rewards.end());
      merged.dones.insert(merged.dones.end(), results[k].dones.begin(),
                          results[k].dones.end());
      next_parts.push_back(results[k].next_obs);
    }
    merged.next_obs = nn::VStack(next_parts);

    rollout.obs.push_back(obs);
    rollout.actions.push_back(step.actions);
    rollout.values.push_back(step.values);
    rollout.log_probs.push_back(step.log_probs);
    rollout.rewards.push_back(merged.rewards);
    rollout.dones.push_back(merged.dones);

    obs = merged.next_obs;
    rollout.num_steps = t + 1;
    if (merged.horizon_reached) break;
  }

  rollout.last_obs = obs;
  rollout.last_values = agent.Values(obs);
  return rollout;
}

}  // namespace rl
}  // namespace sim2rec
