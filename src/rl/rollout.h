#ifndef SIM2REC_RL_ROLLOUT_H_
#define SIM2REC_RL_ROLLOUT_H_

#include <vector>

#include "envs/env.h"
#include "nn/tape.h"
#include "util/rng.h"

namespace sim2rec {
namespace rl {

/// One synchronous rollout of N users for T steps in a GroupBatchEnv,
/// plus the per-step statistics PPO needs. Step t is "valid" for user i
/// until (and including) the step at which the user's done flag first
/// fires; `mask` encodes this and weights every loss term.
struct Rollout {
  int num_steps = 0;
  int num_users = 0;

  std::vector<nn::Tensor> obs;      // T entries of [N x obs_dim]
  nn::Tensor last_obs;              // [N x obs_dim], s_T for bootstrap
  std::vector<nn::Tensor> actions;  // T entries of [N x act_dim]
  std::vector<std::vector<double>> rewards;    // [T][N]
  std::vector<std::vector<uint8_t>> dones;     // [T][N]
  std::vector<std::vector<double>> values;     // [T][N]
  std::vector<double> last_values;             // [N], V(s_T)
  std::vector<std::vector<double>> log_probs;  // [T][N]

  // Filled by ComputeGae.
  std::vector<std::vector<double>> advantages;  // [T][N]
  std::vector<std::vector<double>> returns;     // [T][N]
  std::vector<std::vector<double>> mask;        // [T][N], 0 or 1

  /// Sum of mask entries (number of valid transitions).
  double MaskSum() const;
  /// Mean episode return over users (sum of masked rewards).
  double MeanReturn() const;
};

/// Generalized advantage estimation (Schulman et al. 2016) with masking:
/// a done flag stops bootstrap; steps after a user's first done get
/// mask 0. Truncation at the rollout end bootstraps from last_values.
void ComputeGae(Rollout* rollout, double gamma, double lambda);

/// Policy interface the rollout collector and PPO train against.
/// Implementations: the context-aware Sim2Rec agent (src/core) and the
/// plain feed-forward agent used by DIRECT / DR-UNI / upper bound.
class Agent {
 public:
  virtual ~Agent() = default;

  virtual int obs_dim() const = 0;
  virtual int action_dim() const = 0;

  /// Resets recurrent state (and prev-action memory) for a batch of n
  /// users. Called by the collector before every episode.
  virtual void BeginEpisode(int n) = 0;

  struct StepOutput {
    nn::Tensor actions;             // [N x act_dim]
    std::vector<double> log_probs;  // N
    std::vector<double> values;     // N
  };
  /// One inference-time step (no gradient graph). When `deterministic`
  /// the mode of the action distribution is returned.
  virtual StepOutput Step(const nn::Tensor& obs, Rng& rng,
                          bool deterministic) = 0;

  /// Value estimate of a final observation (bootstrap).
  virtual std::vector<double> Values(const nn::Tensor& obs) = 0;

  struct SequenceForward {
    nn::Var log_probs;  // [(T*N) x 1], ordered t-major (t0 users, t1 ...)
    nn::Var values;     // [(T*N) x 1]
    nn::Var entropy;    // [(T*N) x 1]
  };
  /// Re-runs the policy differentiably over a stored rollout (full BPTT
  /// for recurrent agents). Must follow the same t-major flattening as
  /// the constants PPO builds from the rollout.
  virtual SequenceForward ForwardRollout(nn::Tape& tape,
                                         const Rollout& rollout) = 0;

  /// Parameters PPO optimizes.
  virtual std::vector<nn::Parameter*> TrainableParameters() = 0;
};

/// Runs the agent in the environment for min(num_steps, env.horizon())
/// steps from a fresh Reset and records everything PPO needs
/// (GAE not yet applied).
Rollout CollectRollout(envs::GroupBatchEnv& env, Agent& agent,
                       int num_steps, Rng& rng);

/// Average per-user episode return of the agent over full sessions.
/// `deterministic` selects the action-distribution mode (deployment
/// behaviour); stochastic evaluation matches training behaviour.
double EvaluateAgentReturn(envs::GroupBatchEnv& env, Agent& agent,
                           int episodes, Rng& rng,
                           bool deterministic = true);

}  // namespace rl
}  // namespace sim2rec

#endif  // SIM2REC_RL_ROLLOUT_H_
