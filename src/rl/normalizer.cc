#include "rl/normalizer.h"

#include <algorithm>
#include <cmath>

namespace sim2rec {
namespace rl {

ObservationNormalizer::ObservationNormalizer(int dim, double clip)
    : dim_(dim), clip_(clip), mean_(1, dim, 0.0), m2_(1, dim, 0.0) {
  S2R_CHECK(dim > 0);
  S2R_CHECK(clip > 0.0);
}

void ObservationNormalizer::CopyFrom(const ObservationNormalizer& other) {
  S2R_CHECK(other.dim_ == dim_);
  count_ = other.count_;
  mean_ = other.mean_;
  m2_ = other.m2_;
}

void ObservationNormalizer::RestoreStats(int64_t count,
                                         const nn::Tensor& mean,
                                         const nn::Tensor& m2) {
  S2R_CHECK(count >= 0);
  S2R_CHECK(mean.rows() == 1 && mean.cols() == dim_);
  S2R_CHECK(m2.rows() == 1 && m2.cols() == dim_);
  count_ = count;
  mean_ = mean;
  m2_ = m2;
}

void ObservationNormalizer::Update(const nn::Tensor& batch) {
  if (frozen_) return;
  S2R_CHECK(batch.cols() == dim_);
  for (int r = 0; r < batch.rows(); ++r) {
    ++count_;
    for (int c = 0; c < dim_; ++c) {
      const double delta = batch(r, c) - mean_(0, c);
      mean_(0, c) += delta / static_cast<double>(count_);
      m2_(0, c) += delta * (batch(r, c) - mean_(0, c));
    }
  }
}

nn::Tensor ObservationNormalizer::Stddev() const {
  nn::Tensor sd(1, dim_, 1.0);
  if (count_ < 2) return sd;
  for (int c = 0; c < dim_; ++c) {
    sd(0, c) = std::max(
        1e-6, std::sqrt(m2_(0, c) / static_cast<double>(count_)));
  }
  return sd;
}

nn::Tensor ObservationNormalizer::Normalize(const nn::Tensor& batch) const {
  S2R_CHECK(batch.cols() == dim_);
  if (count_ < 2) return batch;
  const nn::Tensor sd = Stddev();
  nn::Tensor out = batch;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < dim_; ++c) {
      out(r, c) = std::clamp((batch(r, c) - mean_(0, c)) / sd(0, c),
                             -clip_, clip_);
    }
  }
  return out;
}

}  // namespace rl
}  // namespace sim2rec
