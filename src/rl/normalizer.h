#ifndef SIM2REC_RL_NORMALIZER_H_
#define SIM2REC_RL_NORMALIZER_H_

#include "nn/tensor.h"

namespace sim2rec {
namespace rl {

/// Per-feature running observation normalizer (Welford over columns),
/// standard practice for PPO on raw-scale observations like DPR order
/// counts. Normalization: clip((x - mean) / std, -clip, +clip).
class ObservationNormalizer {
 public:
  explicit ObservationNormalizer(int dim, double clip = 10.0);

  /// Accumulates statistics from a batch of rows.
  void Update(const nn::Tensor& batch);

  /// Normalizes a batch with the current statistics.
  nn::Tensor Normalize(const nn::Tensor& batch) const;

  /// Stops Update() from changing statistics (evaluation / deployment).
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Copies another normalizer's running statistics (used when
  /// restoring a checkpointed agent: parameters go through
  /// nn::LoadModule, the normalizer state through this).
  void CopyFrom(const ObservationNormalizer& other);

  int dim() const { return dim_; }
  double clip() const { return clip_; }
  int64_t count() const { return count_; }
  const nn::Tensor& mean() const { return mean_; }
  /// Raw second central moment accumulator (serialization).
  const nn::Tensor& m2() const { return m2_; }
  /// Per-feature standard deviation (floored at 1e-6).
  nn::Tensor Stddev() const;

  /// Overwrites the running statistics with previously saved values
  /// (serve::Checkpoint restore path). Shapes must be [1 x dim].
  void RestoreStats(int64_t count, const nn::Tensor& mean,
                    const nn::Tensor& m2);

 private:
  int dim_;
  double clip_;
  bool frozen_ = false;
  int64_t count_ = 0;
  nn::Tensor mean_;  // [1 x dim]
  nn::Tensor m2_;    // [1 x dim]
};

}  // namespace rl
}  // namespace sim2rec

#endif  // SIM2REC_RL_NORMALIZER_H_
