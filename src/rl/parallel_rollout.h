#ifndef SIM2REC_RL_PARALLEL_ROLLOUT_H_
#define SIM2REC_RL_PARALLEL_ROLLOUT_H_

#include <functional>
#include <vector>

#include "core/thread_pool.h"
#include "rl/rollout.h"

namespace sim2rec {
namespace rl {

/// One unit of parallel trajectory collection: an environment bound to
/// a (simulator-ensemble member x user group) pair. Shards must point
/// at distinct environment objects — the engine steps them
/// concurrently.
struct RolloutShard {
  envs::GroupBatchEnv* env = nullptr;
  /// Optional hook run with the shard's private rng before Reset (e.g.
  /// re-draw the active simulator omega ~ p(Omega'), Algorithm 1
  /// line 4).
  std::function<void(envs::GroupBatchEnv*, Rng&)> on_reset;
};

/// Deterministic parallel rollout engine.
///
/// Fans one agent's trajectory collection out across shards and merges
/// the per-shard buffers into a single Rollout whose user axis is
/// ordered canonically: shard 0's users first, then shard 1's, etc.
/// Determinism is by construction, not by locking discipline:
///
///  * Environment transitions of shard k draw from the substream
///    rng.Split(salt).Substream(k) — a pure function of the caller's
///    rng state, never of scheduling.
///  * The agent steps the *merged* observation batch serially on the
///    calling thread, consuming the caller's rng in canonical row
///    order (the recurrent state is per-row, so this is equivalent to
///    stepping each shard separately; only the SADAE group posterior
///    pools across the merged set — see DESIGN.md).
///  * Each shard's StepResult lands in its own slot and is merged in
///    shard order.
///
/// Hence for a fixed seed the result is bit-identical for any thread
/// count, including the null pool (serial).
class ParallelRolloutCollector {
 public:
  /// `pool` may be null (serial collection; still canonical). The pool
  /// must outlive the collector.
  explicit ParallelRolloutCollector(core::ThreadPool* pool = nullptr)
      : pool_(pool) {}

  /// Collects min(num_steps, horizon) lock-steps from every shard.
  /// All shard envs must share obs/action dims and horizon; an empty
  /// shard list yields an empty Rollout (num_steps == num_users == 0)
  /// rather than crashing — callers skip the PPO update.
  Rollout Collect(const std::vector<RolloutShard>& shards, Agent& agent,
                  int num_steps, Rng& rng) const;

  core::ThreadPool* pool() const { return pool_; }

 private:
  core::ThreadPool* pool_;
};

}  // namespace rl
}  // namespace sim2rec

#endif  // SIM2REC_RL_PARALLEL_ROLLOUT_H_
