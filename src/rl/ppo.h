#ifndef SIM2REC_RL_PPO_H_
#define SIM2REC_RL_PPO_H_

#include <memory>

#include "nn/optimizer.h"
#include "rl/rollout.h"

namespace sim2rec {
namespace rl {

/// Proximal Policy Optimization hyper-parameters (Schulman et al. 2017),
/// the policy learner the paper uses (Sec. V-A1). Scaled-down defaults
/// for CPU; the paper-scale values live in the experiment configs.
struct PpoConfig {
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double clip_ratio = 0.2;
  double value_coef = 0.5;
  double entropy_coef = 0.01;
  int epochs = 4;
  double learning_rate = 3e-4;
  double grad_clip = 0.5;
  bool normalize_advantages = true;
  /// Early-stop the epoch loop when approximate KL exceeds this; 0
  /// disables.
  double target_kl = 0.03;
  /// Internal reward scaling applied before GAE so value-loss gradients
  /// stay O(1) on raw-reward environments (order counts). Reported
  /// returns remain in raw units.
  double reward_scale = 1.0;
};

/// Full-batch recurrent PPO: every update re-runs the agent's sequence
/// forward pass (BPTT through the extractor LSTM) over the whole rollout.
class PpoTrainer {
 public:
  PpoTrainer(Agent* agent, const PpoConfig& config);

  struct UpdateStats {
    double policy_loss = 0.0;
    double value_loss = 0.0;
    double entropy = 0.0;
    double approx_kl = 0.0;
    double grad_norm = 0.0;
    int epochs_run = 0;
    double mean_return = 0.0;
  };

  /// Computes GAE on the rollout and applies `config.epochs` clipped
  /// policy-gradient steps.
  UpdateStats Update(Rollout* rollout);

  void set_learning_rate(double lr) { optimizer_->set_learning_rate(lr); }
  double learning_rate() const { return optimizer_->learning_rate(); }
  const PpoConfig& config() const { return config_; }

 private:
  Agent* agent_;
  PpoConfig config_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace rl
}  // namespace sim2rec

#endif  // SIM2REC_RL_PPO_H_
