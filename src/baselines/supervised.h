#ifndef SIM2REC_BASELINES_SUPERVISED_H_
#define SIM2REC_BASELINES_SUPERVISED_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "util/rng.h"

namespace sim2rec {
namespace baselines {

/// Shared machinery of the supervised-learning recommenders of the
/// paper's comparison (WideDeep [Cheng et al. 2016] and DeepFM
/// [Guo et al. 2017]): both regress the instant engagement r from
/// (s, a) on the logged dataset and recommend greedily,
/// a* = argmax_{a in candidates} r_hat(s, a).
class SupervisedRecommender : public nn::Module {
 public:
  SupervisedRecommender(int obs_dim, int action_dim)
      : obs_dim_(obs_dim), action_dim_(action_dim) {}

  int obs_dim() const { return obs_dim_; }
  int action_dim() const { return action_dim_; }

  /// Differentiable score head over [N x (obs+act)] inputs -> [N x 1].
  virtual nn::Var Forward(nn::Tape& tape, const nn::Tensor& inputs) = 0;

  /// Plain-value prediction.
  nn::Tensor Predict(const nn::Tensor& inputs);

  struct TrainConfig {
    int epochs = 30;
    int batch_size = 256;
    double learning_rate = 1e-3;
    double grad_clip = 5.0;
    uint64_t seed = 0;
  };
  /// Minibatch MSE regression of targets [M x 1]; returns final loss.
  double Train(const nn::Tensor& inputs, const nn::Tensor& targets,
               const TrainConfig& config);

  /// Greedy recommendation: for each observation row, the candidate
  /// action with the highest predicted instant engagement.
  nn::Tensor Act(const nn::Tensor& obs,
                 const std::vector<std::vector<double>>& candidates);

 private:
  int obs_dim_;
  int action_dim_;
};

/// Uniform 1-D candidate grid over [lo, hi].
std::vector<std::vector<double>> ActionGrid1D(double lo, double hi,
                                              int points);
/// Cartesian 2-D candidate grid over [lo, hi]^2.
std::vector<std::vector<double>> ActionGrid2D(double lo, double hi,
                                              int points_per_dim);

/// Wide & Deep: a linear "wide" part over raw features plus explicit
/// action-x-state cross products (memorization) and a deep MLP
/// (generalization).
class WideDeep : public SupervisedRecommender {
 public:
  WideDeep(int obs_dim, int action_dim,
           const std::vector<int>& deep_hidden, Rng& rng);

  nn::Var Forward(nn::Tape& tape, const nn::Tensor& inputs) override;

 private:
  nn::Tensor BuildWideFeatures(const nn::Tensor& inputs) const;

  int wide_dim_;
  std::unique_ptr<nn::Linear> wide_;
  std::unique_ptr<nn::Mlp> deep_;
};

/// DeepFM: first-order linear term + factorization-machine second-order
/// interactions over per-feature embeddings + a deep MLP, summed.
class DeepFm : public SupervisedRecommender {
 public:
  DeepFm(int obs_dim, int action_dim, int embedding_dim,
         const std::vector<int>& deep_hidden, Rng& rng);

  nn::Var Forward(nn::Tape& tape, const nn::Tensor& inputs) override;

 private:
  int embedding_dim_;
  std::unique_ptr<nn::Linear> first_order_;
  nn::Parameter* embeddings_;  // [(obs+act) x embedding_dim]
  std::unique_ptr<nn::Mlp> deep_;
};

}  // namespace baselines
}  // namespace sim2rec

#endif  // SIM2REC_BASELINES_SUPERVISED_H_
