#include "baselines/supervised.h"

#include <algorithm>

#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace sim2rec {
namespace baselines {

nn::Tensor SupervisedRecommender::Predict(const nn::Tensor& inputs) {
  nn::Tape tape;
  nn::Var out = Forward(tape, inputs);
  return out.value();
}

double SupervisedRecommender::Train(const nn::Tensor& inputs,
                                    const nn::Tensor& targets,
                                    const TrainConfig& config) {
  S2R_CHECK(inputs.rows() == targets.rows());
  S2R_CHECK(inputs.cols() == obs_dim_ + action_dim_);
  Rng rng(config.seed);
  nn::Adam optimizer(Parameters(), config.learning_rate);
  const int n = inputs.rows();
  const int batch = std::min(config.batch_size, n);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<int> order = rng.Permutation(n);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int start = 0; start + batch <= n; start += batch) {
      nn::Tensor bx(batch, inputs.cols());
      nn::Tensor by(batch, 1);
      for (int k = 0; k < batch; ++k) {
        bx.SetRow(k, inputs.Row(order[start + k]));
        by(k, 0) = targets(order[start + k], 0);
      }
      nn::Tape tape;
      nn::Var pred = Forward(tape, bx);
      nn::Var loss = nn::MseLossV(pred, by);
      optimizer.ZeroGrad();
      tape.Backward(loss);
      nn::ClipGradNorm(Parameters(), config.grad_clip);
      optimizer.Step();
      epoch_loss += loss.value()(0, 0);
      ++batches;
    }
    last_loss = batches > 0 ? epoch_loss / batches : 0.0;
  }
  return last_loss;
}

nn::Tensor SupervisedRecommender::Act(
    const nn::Tensor& obs,
    const std::vector<std::vector<double>>& candidates) {
  S2R_CHECK(obs.cols() == obs_dim_);
  S2R_CHECK(!candidates.empty());
  const int n = obs.rows();
  const int num_candidates = static_cast<int>(candidates.size());

  // One big batch: every (user, candidate) pair.
  nn::Tensor inputs(n * num_candidates, obs_dim_ + action_dim_);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < num_candidates; ++k) {
      S2R_CHECK(static_cast<int>(candidates[k].size()) == action_dim_);
      const int row = i * num_candidates + k;
      for (int c = 0; c < obs_dim_; ++c) inputs(row, c) = obs(i, c);
      for (int c = 0; c < action_dim_; ++c)
        inputs(row, obs_dim_ + c) = candidates[k][c];
    }
  }
  const nn::Tensor scores = Predict(inputs);

  nn::Tensor actions(n, action_dim_);
  for (int i = 0; i < n; ++i) {
    int best = 0;
    for (int k = 1; k < num_candidates; ++k) {
      if (scores(i * num_candidates + k, 0) >
          scores(i * num_candidates + best, 0)) {
        best = k;
      }
    }
    for (int c = 0; c < action_dim_; ++c)
      actions(i, c) = candidates[best][c];
  }
  return actions;
}

std::vector<std::vector<double>> ActionGrid1D(double lo, double hi,
                                              int points) {
  S2R_CHECK(points >= 2);
  std::vector<std::vector<double>> grid;
  for (int k = 0; k < points; ++k) {
    grid.push_back({lo + (hi - lo) * k / (points - 1)});
  }
  return grid;
}

std::vector<std::vector<double>> ActionGrid2D(double lo, double hi,
                                              int points_per_dim) {
  S2R_CHECK(points_per_dim >= 2);
  std::vector<std::vector<double>> grid;
  for (int i = 0; i < points_per_dim; ++i) {
    for (int j = 0; j < points_per_dim; ++j) {
      grid.push_back({lo + (hi - lo) * i / (points_per_dim - 1),
                      lo + (hi - lo) * j / (points_per_dim - 1)});
    }
  }
  return grid;
}

WideDeep::WideDeep(int obs_dim, int action_dim,
                   const std::vector<int>& deep_hidden, Rng& rng)
    : SupervisedRecommender(obs_dim, action_dim) {
  // Wide features: raw inputs plus every action x state cross product.
  wide_dim_ = obs_dim + action_dim + obs_dim * action_dim;
  wide_ = std::make_unique<nn::Linear>("widedeep.wide", wide_dim_, 1, rng);
  deep_ = std::make_unique<nn::Mlp>("widedeep.deep", obs_dim + action_dim,
                                    deep_hidden, 1, rng,
                                    nn::Activation::kRelu);
  AddChild(wide_.get());
  AddChild(deep_.get());
}

nn::Tensor WideDeep::BuildWideFeatures(const nn::Tensor& inputs) const {
  const int n = inputs.rows();
  const int od = obs_dim();
  const int ad = action_dim();
  nn::Tensor wide(n, wide_dim_);
  for (int r = 0; r < n; ++r) {
    int col = 0;
    for (int c = 0; c < od + ad; ++c) wide(r, col++) = inputs(r, c);
    for (int a = 0; a < ad; ++a) {
      for (int s = 0; s < od; ++s) {
        wide(r, col++) = inputs(r, od + a) * inputs(r, s);
      }
    }
  }
  return wide;
}

nn::Var WideDeep::Forward(nn::Tape& tape, const nn::Tensor& inputs) {
  S2R_CHECK(inputs.cols() == obs_dim() + action_dim());
  nn::Var wide_out =
      wide_->Forward(tape, tape.Constant(BuildWideFeatures(inputs)));
  nn::Var deep_out = deep_->Forward(tape, tape.Constant(inputs));
  return nn::AddV(wide_out, deep_out);
}

DeepFm::DeepFm(int obs_dim, int action_dim, int embedding_dim,
               const std::vector<int>& deep_hidden, Rng& rng)
    : SupervisedRecommender(obs_dim, action_dim),
      embedding_dim_(embedding_dim) {
  const int f = obs_dim + action_dim;
  first_order_ = std::make_unique<nn::Linear>("deepfm.w1", f, 1, rng);
  embeddings_ = AddParameter(
      "deepfm.V", nn::XavierUniform(f, embedding_dim, rng));
  deep_ = std::make_unique<nn::Mlp>("deepfm.deep", f, deep_hidden, 1, rng,
                                    nn::Activation::kRelu);
  AddChild(first_order_.get());
  AddChild(deep_.get());
}

nn::Var DeepFm::Forward(nn::Tape& tape, const nn::Tensor& inputs) {
  S2R_CHECK(inputs.cols() == obs_dim() + action_dim());
  nn::Var x = tape.Constant(inputs);
  nn::Var v = tape.Leaf(embeddings_);

  nn::Var first = first_order_->Forward(tape, x);

  // FM second order: 0.5 * sum_k[ (x V)_k^2 - (x^2) (V^2)_k ].
  nn::Var xv = nn::MatMulV(x, v);                        // [N x K]
  nn::Var sum_square = nn::SquareV(xv);
  nn::Var square_sum = nn::MatMulV(nn::SquareV(x), nn::SquareV(v));
  nn::Var second =
      nn::ScaleV(nn::RowSumV(nn::SubV(sum_square, square_sum)), 0.5);

  nn::Var deep_out = deep_->Forward(tape, x);
  return nn::AddV(nn::AddV(first, second), deep_out);
}

}  // namespace baselines
}  // namespace sim2rec
