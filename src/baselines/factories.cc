#include "baselines/factories.h"

namespace sim2rec {
namespace baselines {

const char* AgentVariantName(AgentVariant variant) {
  switch (variant) {
    case AgentVariant::kSim2Rec:
      return "Sim2Rec";
    case AgentVariant::kDrOsi:
      return "DR-OSI";
    case AgentVariant::kDrUni:
      return "DR-UNI";
    case AgentVariant::kDirect:
      return "DIRECT";
    case AgentVariant::kUpperBound:
      return "UpperBound";
  }
  return "?";
}

core::ContextAgentConfig MakeAgentConfig(AgentVariant variant, int obs_dim,
                                         int action_dim) {
  core::ContextAgentConfig config;
  config.obs_dim = obs_dim;
  config.action_dim = action_dim;
  switch (variant) {
    case AgentVariant::kSim2Rec:
    case AgentVariant::kDrOsi:
      config.use_extractor = true;
      break;
    case AgentVariant::kDrUni:
    case AgentVariant::kDirect:
    case AgentVariant::kUpperBound:
      config.use_extractor = false;
      break;
  }
  return config;
}

}  // namespace baselines
}  // namespace sim2rec
