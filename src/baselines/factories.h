#ifndef SIM2REC_BASELINES_FACTORIES_H_
#define SIM2REC_BASELINES_FACTORIES_H_

#include "core/context_agent.h"

namespace sim2rec {
namespace baselines {

/// The policy-learning variants compared in the paper (Sec. V-A2).
/// All share the PPO learner; they differ only in the extractor
/// architecture and the training environment set:
///   kSim2Rec    hierarchical extractor with SADAE, simulator set
///   kDrOsi      plain LSTM extractor (no SADAE), simulator set
///   kDrUni      no extractor (domain randomization), simulator set
///   kDirect     no extractor, a single simulator
///   kUpperBound no extractor, trained on the target environment itself
enum class AgentVariant {
  kSim2Rec,
  kDrOsi,
  kDrUni,
  kDirect,
  kUpperBound,
};

const char* AgentVariantName(AgentVariant variant);

/// Base agent configuration for a variant. Sim2Rec additionally needs a
/// SADAE instance passed to the ContextAgent constructor; for every
/// other variant pass nullptr.
core::ContextAgentConfig MakeAgentConfig(AgentVariant variant, int obs_dim,
                                         int action_dim);

}  // namespace baselines
}  // namespace sim2rec

#endif  // SIM2REC_BASELINES_FACTORIES_H_
