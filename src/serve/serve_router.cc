#include "serve/serve_router.h"

#include <limits>
#include <mutex>

#include "obs/trace.h"
#include "serve/trajectory_log.h"
#include "util/logging.h"

namespace sim2rec {
namespace serve {
namespace {

/// Scratch store used to funnel all shards' sessions through the
/// SessionStore snapshot format: effectively uncapped so a spill never
/// evicts.
SessionStoreConfig UncappedConfig(const SessionStoreConfig& base) {
  SessionStoreConfig config = base;
  config.max_bytes = std::numeric_limits<size_t>::max() / 2;
  return config;
}

}  // namespace

ServeRouter::ServeRouter(const core::ContextAgent* agent,
                         const ServeRouterConfig& config, int initial_shards)
    : agent_(agent), config_(config), ring_(config.virtual_nodes) {
  S2R_CHECK(agent != nullptr);
  S2R_CHECK(initial_shards >= 1);
  if (config_.shard.precision == Precision::kFloat32 &&
      config_.shard.plan == nullptr) {
    // Freeze once; MakeShard copies this config, so every shard —
    // including ones added later — shares the same immutable plan
    // instead of freezing its own copy of the weights.
    infer::FreezeResult frozen = infer::InferencePlan::Freeze(*agent);
    S2R_CHECK_MSG(frozen.ok(),
                  ("float32 serving requested but the agent failed to "
                   "freeze: " +
                   frozen.error)
                      .c_str());
    config_.shard.plan = std::move(frozen.plan);
    S2R_LOG_INFO("serve_router: frozen shared %s",
                 config_.shard.plan->Describe().c_str());
  }
  for (int id = 0; id < initial_shards; ++id) {
    shards_.emplace(id, MakeShard(id));
    ring_.AddNode(id);
  }
}

ServeRouter::~ServeRouter() = default;

ServeRouter::Shard ServeRouter::MakeShard(int shard_id) const {
  Shard shard;
  shard.registry = std::make_unique<obs::MetricsRegistry>();
  InferenceServerConfig config = config_.shard;
  config.registry = shard.registry.get();
  config.shard_id = shard_id;
  if (config_.trajectory_log != nullptr) {
    // Per-shard sink: InferenceServer guarantees one producer (its
    // batch-processing thread), which is exactly the SPSC contract.
    config.trajectory_sink = config_.trajectory_log->OpenSink(shard_id);
  }
  shard.server = std::make_unique<InferenceServer>(agent_, config);
  return shard;
}

ServeReply ServeRouter::Act(uint64_t user_id, const nn::Tensor& obs) {
  // Shared for the whole downstream call: this is what lets an
  // exclusive reshard double as the in-flight drain.
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const int owner = ring_.NodeFor(user_id);
  S2R_CHECK(owner >= 0);
  S2R_TRACE_SPAN("router/act", "shard", static_cast<double>(owner));
  return shards_.at(owner).server->Act(user_id, obs);
}

void ServeRouter::EndSession(uint64_t user_id) {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const int owner = ring_.NodeFor(user_id);
  if (owner < 0) return;
  shards_.at(owner).server->EndSession(user_id);
}

void ServeRouter::MigrateFrom(int from_id) {
  Shard& from = shards_.at(from_id);
  auto moved = from.server->sessions().ExtractIf([&](uint64_t user_id) {
    return ring_.NodeFor(user_id) != from_id;
  });
  for (auto& [user_id, session] : moved) {
    const int owner = ring_.NodeFor(user_id);
    S2R_CHECK(owner >= 0 && owner != from_id);
    shards_.at(owner).server->sessions().Restore(user_id,
                                                 std::move(session));
  }
}

bool ServeRouter::AddShard(int shard_id) {
  if (shard_id < 0) return false;
  std::unique_lock<std::shared_mutex> lock(mutex_);  // drain barrier
  if (ring_.HasNode(shard_id)) return false;
  S2R_TRACE_SPAN("router/reshard", "shard",
                 static_cast<double>(shard_id), "add", 1.0);
  shards_.emplace(shard_id, MakeShard(shard_id));
  ring_.AddNode(shard_id);
  // Consistent hashing: only sessions now owned by the new shard move;
  // every surviving pair keeps its assignment.
  for (auto& [id, shard] : shards_) {
    if (id != shard_id) MigrateFrom(id);
  }
  return true;
}

bool ServeRouter::RemoveShard(int shard_id) {
  std::unique_lock<std::shared_mutex> lock(mutex_);  // drain barrier
  if (!ring_.HasNode(shard_id)) return false;
  if (shards_.size() <= 1) return false;  // a router always has a shard
  S2R_TRACE_SPAN("router/reshard", "shard",
                 static_cast<double>(shard_id), "add", 0.0);
  ring_.RemoveNode(shard_id);
  // The exclusive lock guarantees no request is in flight and the
  // shard's queue is empty; Shutdown just parks its batcher thread.
  Shard& leaving = shards_.at(shard_id);
  leaving.server->Shutdown();
  // Off the ring the shard owns nothing, so this spills every resident
  // session into its new owner, recurrent state intact.
  MigrateFrom(shard_id);
  shards_.erase(shard_id);
  return true;
}

bool ServeRouter::SaveSessions(const std::string& path) const {
  std::unique_lock<std::shared_mutex> lock(mutex_);  // quiesced snapshot
  if (shards_.empty()) return false;
  const SessionStore& first = shards_.begin()->second.server->sessions();
  SessionStore merged(first.dims(), UncappedConfig(first.config()));
  for (const auto& [id, shard] : shards_) {
    for (auto& [user_id, session] : shard.server->sessions().ExportSessions()) {
      merged.Restore(user_id, std::move(session));
    }
  }
  return merged.Save(path);
}

bool ServeRouter::LoadSessions(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (shards_.empty()) return false;
  const SessionStore& first = shards_.begin()->second.server->sessions();
  SessionStore staged(first.dims(), UncappedConfig(first.config()));
  if (!staged.Load(path)) return false;  // store untouched on failure
  for (auto& [user_id, session] : staged.ExtractIf(
           [](uint64_t) { return true; })) {
    const int owner = ring_.NodeFor(user_id);
    S2R_CHECK(owner >= 0);
    shards_.at(owner).server->sessions().Restore(user_id,
                                                 std::move(session));
  }
  return true;
}

bool ServeRouter::SwapModel(
    const core::ContextAgent* agent,
    std::shared_ptr<const infer::InferencePlan> plan) {
  if (agent == nullptr) return false;
  std::unique_lock<std::shared_mutex> lock(mutex_);  // drain barrier
  S2R_CHECK(!shards_.empty());
  S2R_TRACE_SPAN("router/swap_model", "shards",
                 static_cast<double>(shards_.size()));
  // Every shard serves the same agent, so one shard's compatibility
  // verdict is every shard's verdict: probe the first, and only commit
  // the rest once it accepts. That makes the swap all-or-nothing
  // without a separate validation pass.
  auto it = shards_.begin();
  if (!it->second.server->SwapModel(agent, plan)) return false;
  for (++it; it != shards_.end(); ++it) {
    S2R_CHECK(it->second.server->SwapModel(agent, plan));
  }
  agent_ = agent;
  // Future shards (AddShard under autoscaling) freeze nothing: they
  // share the swapped-in plan exactly like the initial shards share
  // the constructor's.
  config_.shard.plan = std::move(plan);
  return true;
}

obs::MetricsSnapshot ServeRouter::MergedMetrics() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<obs::MetricsSnapshot> parts;
  parts.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) {
    parts.push_back(shard.registry->Snapshot());
  }
  return obs::MergeSnapshots(parts);
}

std::vector<std::pair<int, InferenceServerStats>> ServeRouter::ShardStats()
    const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::pair<int, InferenceServerStats>> stats;
  stats.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) {
    stats.emplace_back(id, shard.server->stats());
  }
  return stats;
}

int ServeRouter::ShardFor(uint64_t user_id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return ring_.NodeFor(user_id);
}

std::vector<int> ServeRouter::shard_ids() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return ring_.Nodes();
}

int ServeRouter::num_shards() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return static_cast<int>(shards_.size());
}

InferenceServer* ServeRouter::shard(int shard_id) {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = shards_.find(shard_id);
  return it != shards_.end() ? it->second.server.get() : nullptr;
}

}  // namespace serve
}  // namespace sim2rec
