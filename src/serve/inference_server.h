#ifndef SIM2REC_SERVE_INFERENCE_SERVER_H_
#define SIM2REC_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/context_agent.h"
#include "core/thread_pool.h"
#include "infer/plan.h"
#include "obs/metrics.h"
#include "serve/metrics.h"
#include "serve/policy_service.h"
#include "serve/session_store.h"

namespace sim2rec {
namespace serve {

class TrajectorySink;

/// Numeric path of the serving forward pass.
enum class Precision {
  /// Double-precision nn::Module ServeStep — the reference path. Keeps
  /// the bitwise batched==serial contract bench/micro_serve pins.
  kDouble,
  /// Frozen float32 infer::InferencePlan with SIMD kernels (runtime
  /// AVX2 dispatch, scalar fallback). Answers track the double path to
  /// float32 tolerance (~1e-4, checked in tests/infer_test.cc); each row
  /// is still computed independently, so batched-vs-serial stays exactly
  /// equal per row.
  kFloat32,
};

struct InferenceServerConfig {
  /// Micro-batching: coalesce up to `max_batch_size` concurrent Act()
  /// calls into one batched forward pass, waiting at most
  /// `max_queue_delay_us` for stragglers once a request is pending.
  /// With micro_batching false every request runs alone, synchronously
  /// on the calling thread — the serial reference path the batched mode
  /// is bitwise-checked against.
  int max_batch_size = 16;
  int max_queue_delay_us = 200;
  bool micro_batching = true;

  /// Serving-time F_exec guard (mirrors sim/filters): actions outside
  /// the executable box [low - tolerance, high + tolerance] are clamped
  /// into it and flagged. Empty vectors disable the guard. The *raw*
  /// action is what enters the user's recurrent state (training parity:
  /// the extractor conditioned on unclamped policy outputs; the
  /// training envs clip internally).
  std::vector<double> action_low;
  std::vector<double> action_high;
  double exec_tolerance = 0.02;

  /// Forward-pass numerics; see Precision. kFloat32 buys ~4x+ request
  /// throughput on AVX2 hardware (bench/micro_serve prints the table).
  Precision precision = Precision::kDouble;
  /// Pre-frozen plan to serve from under kFloat32. A ServeRouter
  /// freezes the agent once and hands this same immutable plan to every
  /// shard, so N shards share one copy of the packed weights. Null with
  /// kFloat32 makes the server freeze its own plan at construction
  /// (aborts if the agent fails validation — callers wanting a soft
  /// fallback freeze first and check FreezeResult themselves). Ignored
  /// under kDouble.
  std::shared_ptr<const infer::InferencePlan> plan;

  SessionStoreConfig sessions;

  /// Registry this server records its serve.* metrics into. Null means
  /// obs::MetricsRegistry::Global() — the single-server default. A
  /// ServeRouter gives each shard its own registry (standing in for a
  /// per-process registry) so per-shard rates stay separable and the
  /// router can merge them with obs::MergeSnapshots. Must outlive the
  /// server.
  obs::MetricsRegistry* registry = nullptr;
  /// Shard label for trace spans ("shard" arg on serve/batch etc.);
  /// -1 = unsharded.
  int shard_id = -1;

  /// Opt-in trajectory logging: when non-null, every served request
  /// appends its (obs, action, value, step) tuple to this sink from
  /// the batch-processing thread (see serve/trajectory_log.h). Null
  /// (the default) records nothing. The sink's owner (TrajectoryLog)
  /// must outlive the server. Determinism-neutral: replies are
  /// bitwise-identical with or without a sink.
  TrajectorySink* trajectory_sink = nullptr;
};

// ServeReply lives in serve/policy_service.h (included above) next to
// the PolicyService interface whose Act returns it.

struct InferenceServerStats {
  int64_t requests = 0;
  int64_t batches = 0;
  /// Requests enqueued but not yet batched (instantaneous; 0 on the
  /// serial path, which has no queue). The overload signal the
  /// Autoscaler and ops runbook watch.
  int64_t queue_depth = 0;
  double mean_batch_occupancy = 0.0;
  int max_batch = 0;
  int64_t exec_clamps = 0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_mean_us = 0.0;
  double latency_max_us = 0.0;
  SessionStore::Stats sessions;
};

/// Micro-batched policy-serving front end over a checkpointed
/// ContextAgent: Act(user_id, obs) gathers the user's recurrent state
/// from the SessionStore, rides a coalesced batched ServeStep, applies
/// the F_exec guard, commits the advanced state, and returns the
/// action. Because ServeStep is row-decomposable (each user's SADAE
/// set is their own singleton), the answers are bitwise-identical to
/// serving every request alone, whatever batch compositions the queue
/// happens to produce.
///
/// Threading: Act() is safe from any number of client threads; a
/// single internal batcher thread owns the forward pass. The optional
/// core::ThreadPool parallelizes batch assembly and post-processing
/// (gather/scatter/guard) across rows; it must be dedicated to this
/// server (a ThreadPool allows one driving thread at a time). The
/// caller keeps ownership of agent and pool; both must outlive the
/// server. Requests of a single user are expected to be sequential
/// (session affinity) — concurrent same-user requests stay memory-safe
/// but race on the session state, last commit wins.
class InferenceServer : public PolicyService {
 public:
  InferenceServer(const core::ContextAgent* agent,
                  const InferenceServerConfig& config,
                  core::ThreadPool* pool = nullptr);
  ~InferenceServer() override;

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Serves one observation for one user; blocks until the reply is
  /// computed. `obs` is [1 x obs_dim].
  ServeReply Act(uint64_t user_id, const nn::Tensor& obs) override;

  /// Ends a user's session (drops stored recurrent state).
  void EndSession(uint64_t user_id) override;

  /// Stops the batcher thread after draining queued requests. Called by
  /// the destructor; idempotent.
  void Shutdown();

  /// Atomically replaces the served model while keeping every resident
  /// session. The caller must guarantee no Act() is in flight on this
  /// server (a ServeRouter calls this under its exclusive drain
  /// barrier). Returns false — changing nothing — when the new agent is
  /// session-incompatible: different SessionDims or obs_dim (resident
  /// recurrent state would be shape-invalid), or a null `plan` under
  /// kFloat32. `agent` must outlive the server; `plan` is the
  /// pre-frozen float32 plan (ignored under kDouble).
  bool SwapModel(const core::ContextAgent* agent,
                 std::shared_ptr<const infer::InferencePlan> plan);

  InferenceServerStats stats() const;
  SessionStore& sessions() { return *store_; }
  const core::ContextAgent& agent() const { return *agent_; }
  /// The frozen plan this server forwards through, or null on the
  /// double path. Shards of one router return the same pointer.
  const infer::InferencePlan* plan() const { return plan_.get(); }
  /// Shared ownership of the same — lets a hot-swap observer keep a
  /// superseded plan alive so before/after pointer comparisons can't be
  /// confused by allocator address reuse. Call only with no swap in
  /// flight (e.g. a driver tick hook).
  std::shared_ptr<const infer::InferencePlan> plan_handle() const {
    return plan_;
  }

 private:
  struct Pending {
    uint64_t user_id = 0;
    const nn::Tensor* obs = nullptr;
    std::chrono::steady_clock::time_point enqueued;
    /// Caller's obs::CurrentTraceId() captured at Act() entry — the
    /// batcher thread records the latency exemplar, so the id must
    /// travel with the request, not sit in a thread-local.
    uint64_t trace_id = 0;
    ServeReply reply;
    bool done = false;
  };

  void BatcherLoop();
  /// Runs one coalesced batch end-to-end (gather, forward, guard,
  /// commit) and fills each request's reply. Does not signal waiters.
  void ProcessBatch(const std::vector<Pending*>& batch);
  int64_t NowMs() const;

  const core::ContextAgent* agent_;
  InferenceServerConfig config_;
  core::ThreadPool* pool_;
  std::unique_ptr<SessionStore> store_;
  // Float32 path: immutable shared plan + this server's private
  // workspace. Only the thread that runs ProcessBatch touches the
  // workspace (the batcher thread, or callers serialized by
  // serial_mutex_ when micro-batching is off).
  std::shared_ptr<const infer::InferencePlan> plan_;
  std::unique_ptr<infer::Workspace> workspace_;

  std::mutex mutex_;
  std::condition_variable queue_cv_;  // batcher waits for requests
  std::condition_variable done_cv_;   // clients wait for replies
  std::deque<Pending*> queue_;
  bool stop_ = false;
  std::thread batcher_;
  std::mutex serial_mutex_;  // serializes non-batching inline requests

  LatencyHistogram latency_;
  BatchOccupancy occupancy_;
  std::atomic<int64_t> exec_clamps_{0};
  // Lock-free mirror of queue_.size() so stats() and the autoscaler
  // never touch the batcher mutex.
  std::atomic<int64_t> queue_depth_{0};

  // serve.* metrics resolved once at construction against the
  // configured registry (per-shard when routed, Global otherwise); the
  // hot path records through cached pointers, never a name lookup.
  obs::Counter* metric_requests_ = nullptr;
  obs::Counter* metric_batches_ = nullptr;
  obs::Counter* metric_exec_clamps_ = nullptr;
  obs::LogHistogram* metric_latency_us_ = nullptr;
  obs::LogHistogram* metric_batch_occupancy_ = nullptr;
  obs::Gauge* metric_queue_depth_ = nullptr;

  std::chrono::steady_clock::time_point epoch_;
};

/// Derives the session-state shapes the store needs from an agent.
SessionDims SessionDimsFor(const core::ContextAgent& agent);

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_INFERENCE_SERVER_H_
