#ifndef SIM2REC_SERVE_METRICS_H_
#define SIM2REC_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"

namespace sim2rec {
namespace serve {

/// Log-bucketed latency histogram (microseconds), a thin wrapper over
/// obs::LogHistogram: O(1) memory and record cost regardless of request
/// count, which is what a serving loop at "millions of users" scale
/// needs — we never keep raw samples. Record is lock-free (atomic
/// bucket counters — the previous implementation serialized every
/// request on a mutex). Buckets double from 1us; quantiles are
/// interpolated linearly inside the owning bucket and clamped to the
/// observed [min, max], so q=0, q=1 and single-sample queries return
/// exact values while interior quantiles carry bucket-sized error —
/// fine for p50/p95/p99 reporting, not for asserting exact values.
///
/// This object is functional API surface (ServerStats is built from
/// it), so it records unconditionally — the obs::Enabled() switch only
/// gates the registry mirror inside the server, never these counts.
class LatencyHistogram {
 public:
  void Record(double micros) { histogram_.Record(micros); }

  int64_t count() const { return histogram_.count(); }
  double mean_us() const { return histogram_.mean(); }
  double max_us() const { return histogram_.max_value(); }
  /// q in [0, 1]; returns 0 when empty, the exact sample when count==1.
  double QuantileUs(double q) const { return histogram_.Quantile(q); }

 private:
  obs::LogHistogram histogram_;
};

/// Micro-batch shape counters: how full the coalesced batches ran.
/// Lock-free for the same reason as LatencyHistogram.
class BatchOccupancy {
 public:
  void Record(int batch_size);

  int64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }
  int64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  double mean() const;
  int max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int> max_{0};
};

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_METRICS_H_
