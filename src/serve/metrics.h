#ifndef SIM2REC_SERVE_METRICS_H_
#define SIM2REC_SERVE_METRICS_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace sim2rec {
namespace serve {

/// Log-bucketed latency histogram (microseconds): O(1) memory and
/// record cost regardless of request count, which is what a serving
/// loop at "millions of users" scale needs — we never keep raw samples.
/// Buckets double from 1us; quantiles are interpolated linearly inside
/// the owning bucket, so tail estimates carry bucket-sized error — fine
/// for p50/p95/p99 reporting, not for asserting exact values.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(double micros);

  int64_t count() const;
  double mean_us() const;
  double max_us() const;
  /// q in [0, 1]; returns 0 when empty.
  double QuantileUs(double q) const;

 private:
  static constexpr int kBuckets = 40;  // 1us .. ~2^39us (~9 days)
  int BucketFor(double micros) const;

  mutable std::mutex mutex_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
};

/// Micro-batch shape counters: how full the coalesced batches ran.
class BatchOccupancy {
 public:
  void Record(int batch_size);

  int64_t batches() const;
  int64_t requests() const;
  double mean() const;
  int max() const;

 private:
  mutable std::mutex mutex_;
  int64_t batches_ = 0;
  int64_t requests_ = 0;
  int max_ = 0;
};

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_METRICS_H_
