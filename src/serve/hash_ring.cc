#include "serve/hash_ring.h"

#include <algorithm>

#include "util/logging.h"

namespace sim2rec {
namespace serve {

HashRing::HashRing(int virtual_nodes) : virtual_nodes_(virtual_nodes) {
  S2R_CHECK(virtual_nodes >= 1);
}

uint64_t HashRing::Mix64(uint64_t x) {
  // splitmix64 finalizer: full-avalanche bijection on 64 bits.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void HashRing::AddNode(int node_id) {
  S2R_CHECK(node_id >= 0);
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node_id);
  if (it != nodes_.end() && *it == node_id) return;
  nodes_.insert(it, node_id);
  Rebuild();
}

void HashRing::RemoveNode(int node_id) {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node_id);
  if (it == nodes_.end() || *it != node_id) return;
  nodes_.erase(it);
  Rebuild();
}

bool HashRing::HasNode(int node_id) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node_id);
}

void HashRing::Rebuild() {
  points_.clear();
  points_.reserve(nodes_.size() * static_cast<size_t>(virtual_nodes_));
  for (int node : nodes_) {
    for (int replica = 0; replica < virtual_nodes_; ++replica) {
      // Mix node and replica through one bijection; the (node, replica)
      // pack is injective for any realistic node id, so points collide
      // only if Mix64 itself collides.
      const uint64_t packed =
          (static_cast<uint64_t>(static_cast<uint32_t>(node)) << 32) |
          static_cast<uint32_t>(replica);
      points_.push_back({Mix64(packed), node});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.node_id < b.node_id;  // deterministic on collision
            });
}

int HashRing::NodeFor(uint64_t key) const {
  if (points_.empty()) return -1;
  const uint64_t h = Mix64(key);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](uint64_t value, const Point& p) { return value < p.hash; });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->node_id;
}

std::vector<int> HashRing::Nodes() const { return nodes_; }

}  // namespace serve
}  // namespace sim2rec
