#include "serve/trajectory_log.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace sim2rec {
namespace serve {
namespace {

// "S2TL" read as a little-endian u32 ('S'=0x53 in the low byte).
constexpr uint32_t kSegmentMagic = 0x4C543253;
constexpr uint8_t kSegmentVersion = 1;

bool IsPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }

std::string SegmentName(int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06d.s2tl", index);
  return buf;
}

}  // namespace

TrajectorySink::TrajectorySink(int shard_id, int obs_dim, int action_dim,
                               int capacity)
    : shard_id_(shard_id), obs_dim_(obs_dim), action_dim_(action_dim),
      capacity_(capacity), payload_stride_(1 + obs_dim + action_dim),
      meta_(capacity),
      payload_(static_cast<size_t>(capacity) * payload_stride_) {
  S2R_CHECK(obs_dim_ > 0 && action_dim_ > 0);
  S2R_CHECK(IsPowerOfTwo(capacity_));
}

void TrajectorySink::Append(uint64_t user_id, uint32_t step, double reward,
                            const double* obs, const double* action) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= static_cast<uint64_t>(capacity_)) {
    // Bounded by design: a stalled flusher costs records, never
    // latency on the serving path.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const size_t slot = head & static_cast<uint64_t>(capacity_ - 1);
  meta_[slot].user_id = user_id;
  meta_[slot].step = step;
  double* payload = &payload_[slot * payload_stride_];
  payload[0] = reward;
  std::memcpy(payload + 1, obs, sizeof(double) * obs_dim_);
  std::memcpy(payload + 1 + obs_dim_, action, sizeof(double) * action_dim_);
  // Release-publish the slot: the consumer's acquire load of head_
  // makes the writes above visible before it reads the slot.
  head_.store(head + 1, std::memory_order_release);
}

TrajectoryLog::TrajectoryLog(const TrajectoryLogConfig& config)
    : config_(config) {
  S2R_CHECK(!config_.dir.empty());
  S2R_CHECK(config_.obs_dim > 0 && config_.action_dim > 0);
  S2R_CHECK(IsPowerOfTwo(config_.ring_capacity));
  S2R_CHECK(config_.segment_max_records >= 1);
  obs::MetricsRegistry& registry = config_.registry != nullptr
                                       ? *config_.registry
                                       : obs::MetricsRegistry::Global();
  metric_appends_ = registry.GetCounter("serve.trajectory_appends");
  metric_drops_ = registry.GetCounter("serve.trajectory_drops");
  metric_segments_ = registry.GetCounter("serve.trajectory_segments");
}

TrajectoryLog::~TrajectoryLog() {
  // Best-effort: whatever is still buffered becomes the final segment.
  CloseSegment();
}

TrajectorySink* TrajectoryLog::OpenSink(int shard_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sinks_.find(shard_id);
  if (it == sinks_.end()) {
    it = sinks_
             .emplace(shard_id,
                      std::unique_ptr<TrajectorySink>(new TrajectorySink(
                          shard_id, config_.obs_dim, config_.action_dim,
                          config_.ring_capacity)))
             .first;
  }
  return it->second.get();
}

bool TrajectoryLog::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t drained = 0;
  int64_t total_dropped = 0;
  for (auto& [shard_id, sink] : sinks_) {
    const uint64_t head = sink->head_.load(std::memory_order_acquire);
    uint64_t tail = sink->tail_.load(std::memory_order_relaxed);
    while (tail != head) {
      const size_t slot =
          tail & static_cast<uint64_t>(sink->capacity_ - 1);
      TrajectoryRecord record;
      record.user_id = sink->meta_[slot].user_id;
      record.step = sink->meta_[slot].step;
      record.shard_id = static_cast<uint32_t>(shard_id);
      const double* payload =
          &sink->payload_[slot * sink->payload_stride_];
      record.reward = payload[0];
      record.obs.assign(payload + 1, payload + 1 + config_.obs_dim);
      record.action.assign(payload + 1 + config_.obs_dim,
                           payload + 1 + config_.obs_dim +
                               config_.action_dim);
      pending_.push_back(std::move(record));
      ++tail;
      ++drained;
    }
    // Release the slots only after they are fully copied out.
    sink->tail_.store(tail, std::memory_order_release);
    total_dropped += sink->dropped();
  }
  if (obs::Enabled()) {
    if (drained > 0) metric_appends_->Add(drained);
    if (total_dropped > synced_drops_) {
      metric_drops_->Add(total_dropped - synced_drops_);
    }
  }
  synced_drops_ = std::max(synced_drops_, total_dropped);

  bool ok = true;
  while (pending_.size() >=
         static_cast<size_t>(config_.segment_max_records)) {
    if (!WriteSegmentLocked(
            static_cast<size_t>(config_.segment_max_records))) {
      ok = false;
      break;  // records stay pending; a later flush retries
    }
  }
  return ok;
}

bool TrajectoryLog::CloseSegment() {
  if (!Flush()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.empty()) return true;
  return WriteSegmentLocked(pending_.size());
}

bool TrajectoryLog::WriteSegmentLocked(size_t record_count) {
  S2R_CHECK(record_count > 0 && record_count <= pending_.size());
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) return false;

  std::string payload;
  payload.reserve(record_count *
                  (16 + sizeof(double) *
                            (1 + config_.obs_dim + config_.action_dim)));
  for (size_t i = 0; i < record_count; ++i) {
    const TrajectoryRecord& record = pending_[i];
    AppendU64(&payload, record.user_id);
    AppendU32(&payload, record.step);
    AppendU32(&payload, record.shard_id);
    AppendF64(&payload, record.reward);
    for (double v : record.obs) AppendF64(&payload, v);
    for (double v : record.action) AppendF64(&payload, v);
  }

  std::string bytes;
  AppendU32(&bytes, kSegmentMagic);
  AppendU8(&bytes, kSegmentVersion);
  AppendU16(&bytes, static_cast<uint16_t>(config_.obs_dim));
  AppendU16(&bytes, static_cast<uint16_t>(config_.action_dim));
  AppendU32(&bytes, static_cast<uint32_t>(record_count));
  AppendU32(&bytes, static_cast<uint32_t>(payload.size()));
  AppendU32(&bytes, Crc32(payload));
  bytes += payload;

  // Staged like every other serving artifact: a reader never sees a
  // half-written segment under the final name.
  const std::string final_path =
      config_.dir + "/" + SegmentName(next_segment_);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) return false;
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) return false;

  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(record_count));
  ++next_segment_;
  flushed_ += static_cast<int64_t>(record_count);
  if (obs::Enabled()) metric_segments_->Add(1);
  return true;
}

TrajectoryLog::Stats TrajectoryLog::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  for (const auto& [shard_id, sink] : sinks_) {
    // head_ counts every record ever accepted by this sink.
    stats.appended += static_cast<int64_t>(
        sink->head_.load(std::memory_order_relaxed));
    stats.dropped += sink->dropped();
  }
  stats.flushed = flushed_;
  stats.segments = next_segment_;
  return stats;
}

SegmentStatus ReadTrajectorySegment(const std::string& path,
                                    TrajectorySegment* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return SegmentStatus::kNotFound;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return SegmentStatus::kCorrupt;

  ByteReader reader(bytes.data(), bytes.size());
  uint32_t magic = 0;
  uint8_t version = 0;
  uint16_t obs_dim = 0, action_dim = 0;
  if (!reader.ReadU32(&magic) || magic != kSegmentMagic) {
    return SegmentStatus::kCorrupt;
  }
  if (!reader.ReadU8(&version)) return SegmentStatus::kCorrupt;
  if (version > kSegmentVersion) return SegmentStatus::kVersionUnsupported;
  if (!reader.ReadU16(&obs_dim) || !reader.ReadU16(&action_dim) ||
      obs_dim == 0 || action_dim == 0) {
    return SegmentStatus::kCorrupt;
  }
  out->obs_dim = obs_dim;
  out->action_dim = action_dim;
  out->records.clear();

  const size_t record_bytes =
      16 + sizeof(double) * (1 + obs_dim + action_dim);
  while (reader.remaining() > 0) {
    uint32_t record_count = 0, payload_len = 0, crc = 0;
    if (!reader.ReadU32(&record_count) || !reader.ReadU32(&payload_len) ||
        !reader.ReadU32(&crc)) {
      return SegmentStatus::kCorrupt;
    }
    if (reader.remaining() < payload_len ||
        static_cast<size_t>(payload_len) != record_count * record_bytes) {
      return SegmentStatus::kCorrupt;
    }
    const char* payload = bytes.data() + reader.offset();
    if (Crc32(payload, static_cast<size_t>(payload_len)) != crc) {
      return SegmentStatus::kCorrupt;
    }
    ByteReader records(payload, payload_len);
    reader.Skip(payload_len);
    for (uint32_t i = 0; i < record_count; ++i) {
      TrajectoryRecord record;
      record.obs.resize(obs_dim);
      record.action.resize(action_dim);
      bool ok = records.ReadU64(&record.user_id) &&
                records.ReadU32(&record.step) &&
                records.ReadU32(&record.shard_id) &&
                records.ReadF64(&record.reward);
      for (int d = 0; ok && d < obs_dim; ++d) {
        ok = records.ReadF64(&record.obs[d]);
      }
      for (int d = 0; ok && d < action_dim; ++d) {
        ok = records.ReadF64(&record.action[d]);
      }
      if (!ok) return SegmentStatus::kCorrupt;
      out->records.push_back(std::move(record));
    }
  }
  return SegmentStatus::kOk;
}

bool ReplayTrajectoryLogs(const std::string& dir,
                          data::LoggedDataset* dataset,
                          std::string* error) {
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.rfind("seg-", 0) == 0 &&
        name.substr(name.size() - 5) == ".s2tl") {
      names.push_back(entry.path().string());
    }
  }
  if (ec) {
    if (error != nullptr) *error = "cannot list " + dir;
    return false;
  }
  // Filename order == finalization order (zero-padded indices).
  std::sort(names.begin(), names.end());

  // Per-user record streams in encounter order (segments are replayed
  // oldest first, so a user's steps arrive in serving order).
  std::map<uint64_t, std::vector<TrajectoryRecord>> streams;
  for (const std::string& path : names) {
    TrajectorySegment segment;
    const SegmentStatus status = ReadTrajectorySegment(path, &segment);
    if (status != SegmentStatus::kOk) {
      if (error != nullptr) {
        *error = path + ": " +
                 (status == SegmentStatus::kVersionUnsupported
                      ? "unsupported segment version"
                      : "corrupt segment");
      }
      return false;
    }
    if (segment.obs_dim != dataset->obs_dim() ||
        segment.action_dim != dataset->action_dim()) {
      if (error != nullptr) *error = path + ": dimension mismatch";
      return false;
    }
    for (TrajectoryRecord& record : segment.records) {
      streams[record.user_id].push_back(std::move(record));
    }
  }

  const int obs_dim = dataset->obs_dim();
  const int action_dim = dataset->action_dim();
  for (auto& [user_id, records] : streams) {
    // Split the stream into sessions: a step-0 record starts one.
    size_t begin = 0;
    while (begin < records.size()) {
      size_t end = begin + 1;
      while (end < records.size() && records[end].step != 0) ++end;
      const int length = static_cast<int>(end - begin);
      data::UserTrajectory trajectory;
      trajectory.user_id = static_cast<int>(user_id);
      trajectory.group_id = static_cast<int>(records[begin].shard_id);
      trajectory.observations = nn::Tensor(length + 1, obs_dim);
      trajectory.actions = nn::Tensor(length, action_dim);
      trajectory.feedback.resize(length);
      trajectory.rewards.resize(length);
      for (int t = 0; t < length; ++t) {
        const TrajectoryRecord& record = records[begin + t];
        for (int d = 0; d < obs_dim; ++d) {
          trajectory.observations(t, d) = record.obs[d];
        }
        for (int d = 0; d < action_dim; ++d) {
          trajectory.actions(t, d) = record.action[d];
        }
        trajectory.feedback[t] = record.reward;
        trajectory.rewards[t] = record.reward;
      }
      // Serving never observes the post-action state, so the terminal
      // s_T is the last served observation (documented in the header).
      for (int d = 0; d < obs_dim; ++d) {
        trajectory.observations(length, d) =
            trajectory.observations(length - 1, d);
      }
      dataset->Add(std::move(trajectory));
      begin = end;
    }
  }
  return true;
}

}  // namespace serve
}  // namespace sim2rec
