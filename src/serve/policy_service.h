#ifndef SIM2REC_SERVE_POLICY_SERVICE_H_
#define SIM2REC_SERVE_POLICY_SERVICE_H_

#include <cstdint>

#include "nn/tensor.h"

namespace sim2rec {
namespace serve {

/// One answered request.
struct ServeReply {
  nn::Tensor action;        // [1 x action_dim], after the F_exec guard
  bool exec_clamped = false;
  double value = 0.0;       // critic estimate (diagnostics)
  int batch_size = 0;       // size of the micro-batch this rode in
};

/// The abstract serving API: anything that can answer
/// Act(user_id, obs) with a policy action while maintaining per-user
/// session state. Both the single-shard InferenceServer and the
/// consistent-hash ServeRouter implement it, so examples, benches and
/// future transport front ends (the ROADMAP's cross-process item) are
/// written once against this interface and work unchanged over one
/// shard or many.
///
/// Contract for implementations:
///  * Act blocks until the reply is computed; `obs` is [1 x obs_dim]
///    and must stay valid for the duration of the call.
///  * Act is safe from any number of client threads; requests of a
///    single user are expected to be sequential (session affinity).
///  * EndSession drops the user's recurrent state; the next Act for
///    that user starts a fresh session.
class PolicyService {
 public:
  virtual ~PolicyService() = default;

  /// Serves one observation for one user; blocks until the reply is
  /// computed.
  virtual ServeReply Act(uint64_t user_id, const nn::Tensor& obs) = 0;

  /// Ends a user's session (drops stored recurrent state).
  virtual void EndSession(uint64_t user_id) = 0;
};

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_POLICY_SERVICE_H_
