#include "serve/metrics.h"

namespace sim2rec {
namespace serve {

void BatchOccupancy::Record(int batch_size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(batch_size, std::memory_order_relaxed);
  int expected = max_.load(std::memory_order_relaxed);
  while (batch_size > expected &&
         !max_.compare_exchange_weak(expected, batch_size,
                                     std::memory_order_relaxed)) {
  }
}

double BatchOccupancy::mean() const {
  const int64_t n = batches();
  return n > 0 ? static_cast<double>(requests()) / static_cast<double>(n)
               : 0.0;
}

}  // namespace serve
}  // namespace sim2rec
