#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

namespace sim2rec {
namespace serve {

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

int LatencyHistogram::BucketFor(double micros) const {
  if (micros < 1.0) return 0;
  const int b = static_cast<int>(std::floor(std::log2(micros))) + 1;
  return std::min(b, kBuckets - 1);
}

void LatencyHistogram::Record(double micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[BucketFor(micros)];
  ++count_;
  sum_us_ += micros;
  max_us_ = std::max(max_us_, micros);
}

int64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double LatencyHistogram::mean_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ > 0 ? sum_us_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::max_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_us_;
}

double LatencyHistogram::QuantileUs(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (static_cast<double>(seen + buckets_[b]) >= target) {
      // Bucket b spans [2^(b-1), 2^b) us (bucket 0 is [0, 1)).
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      const double hi = std::ldexp(1.0, b);
      const double frac =
          (target - static_cast<double>(seen)) /
          static_cast<double>(buckets_[b]);
      return std::min(lo + frac * (hi - lo), max_us_);
    }
    seen += buckets_[b];
  }
  return max_us_;
}

void BatchOccupancy::Record(int batch_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  requests_ += batch_size;
  max_ = std::max(max_, batch_size);
}

int64_t BatchOccupancy::batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

int64_t BatchOccupancy::requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

double BatchOccupancy::mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_ > 0
             ? static_cast<double>(requests_) / static_cast<double>(batches_)
             : 0.0;
}

int BatchOccupancy::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

}  // namespace serve
}  // namespace sim2rec
