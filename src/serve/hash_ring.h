#ifndef SIM2REC_SERVE_HASH_RING_H_
#define SIM2REC_SERVE_HASH_RING_H_

#include <cstdint>
#include <vector>

namespace sim2rec {
namespace serve {

/// Consistent-hash ring over integer node ids with virtual nodes
/// (Karger-style): each node owns `virtual_nodes` pseudo-random points
/// on a 64-bit ring, and a key maps to the node owning the first point
/// at or clockwise after the key's hash. Properties the router builds
/// on:
///  * Adding a node reassigns only the keys that fall into the new
///    node's arcs — in expectation 1/(n+1) of the keyspace — and every
///    reassigned key moves *to* the new node; no key moves between two
///    surviving nodes. Removing a node is the mirror image.
///  * The mapping is a pure function of the node-id set and the two
///    constants below — independent of insertion order, process, or
///    run — so distinct router replicas (and a future socket front
///    end) agree on ownership without coordination.
///
/// Not thread-safe; the owner (ServeRouter) guards it with its own
/// rebalance lock. Node ids are arbitrary non-negative ints and need
/// not be contiguous.
class HashRing {
 public:
  /// Points per node. 64 keeps the max/mean keyspace imbalance under
  /// ~30% for small clusters while an 8-node ring is still only 512
  /// entries (lookups are a binary search over a sorted vector).
  static constexpr int kDefaultVirtualNodes = 64;

  explicit HashRing(int virtual_nodes = kDefaultVirtualNodes);

  /// No-ops when the node is already present / absent.
  void AddNode(int node_id);
  void RemoveNode(int node_id);
  bool HasNode(int node_id) const;

  /// The owning node for a key; -1 when the ring is empty.
  int NodeFor(uint64_t key) const;

  /// Node ids currently on the ring, sorted ascending.
  std::vector<int> Nodes() const;
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int virtual_nodes() const { return virtual_nodes_; }

  /// The 64-bit mix both key and virtual-node placement use (splitmix64
  /// finalizer). Exposed so tests can reason about placement.
  static uint64_t Mix64(uint64_t x);

 private:
  struct Point {
    uint64_t hash;
    int node_id;
  };

  void Rebuild();

  int virtual_nodes_;
  std::vector<int> nodes_;     // sorted ascending
  std::vector<Point> points_;  // sorted by hash, ties broken by node id
};

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_HASH_RING_H_
