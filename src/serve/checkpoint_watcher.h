#ifndef SIM2REC_SERVE_CHECKPOINT_WATCHER_H_
#define SIM2REC_SERVE_CHECKPOINT_WATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "serve/checkpoint.h"
#include "serve/serve_router.h"

namespace sim2rec {
namespace serve {

struct CheckpointWatcherConfig {
  /// Directory whose immediate subdirectories are checkpoint bundles
  /// (the layout CheckpointExportObserver's generation mode writes:
  /// `dir/gen-000002/manifest.txt` etc.).
  std::string dir;
  /// Background poll cadence for Start(); PollOnce() ignores it.
  int poll_interval_ms = 1000;
  /// Must match the router's shard precision: under kFloat32 the
  /// watcher freezes an InferencePlan from each candidate before
  /// swapping (and a freeze failure is a typed rollback, see
  /// SwapOutcome::kFreezeFailed).
  Precision precision = Precision::kDouble;
  /// Generation the router is serving at construction time (bundles at
  /// or below it are never candidates). 0 when the initial model did
  /// not come from a generation sequence.
  uint64_t initial_generation = 0;
  /// Home of the serve.checkpoint_generation gauge and the
  /// serve.checkpoint_swaps / serve.checkpoint_rejects counters. Null =
  /// obs::MetricsRegistry::Global(). Process-level, deliberately NOT a
  /// per-shard registry: the generation is a property of the whole
  /// router.
  obs::MetricsRegistry* registry = nullptr;
};

/// What one poll did. Every outcome except kSwapped leaves serving
/// untouched on the old model — the rollback path is "do nothing",
/// which the drain-barrier swap makes trivially safe.
enum class SwapOutcome {
  /// No un-rejected bundle with a generation above the current one.
  kNoCandidate = 0,
  /// The router is now serving the candidate generation.
  kSwapped,
  /// LoadCheckpointEx refused the candidate (SwapResult::load_status
  /// says why: corrupt, unsupported version, vanished directory).
  kLoadFailed,
  /// kFloat32 only: the bundle loaded but InferencePlan::Freeze
  /// rejected its parameters (non-finite, float32 overflow, shape
  /// drift). The old plan keeps serving.
  kFreezeFailed,
  /// ServeRouter::SwapModel refused: the candidate's session dims or
  /// obs_dim differ from the resident sessions' — swapping would
  /// invalidate live recurrent state, so it never happens.
  kIncompatible,
};

const char* SwapOutcomeName(SwapOutcome outcome);

struct SwapResult {
  SwapOutcome outcome = SwapOutcome::kNoCandidate;
  /// Candidate generation / bundle directory (unset when kNoCandidate).
  uint64_t generation = 0;
  std::string dir;
  /// Detail for kLoadFailed; kOk otherwise.
  LoadStatus load_status = LoadStatus::kOk;
};

/// Closes the train->serve loop: polls a directory for new checkpoint
/// generations, validates each candidate end to end (LoadCheckpointEx
/// integrity + config checks, then a float32 freeze when serving
/// frozen plans), and hot-swaps the router's model under its exclusive
/// drain barrier — every resident session survives, including on
/// shards the autoscaler adds later (they inherit the swapped plan).
///
/// Ordering: generations are monotonic. The watcher only ever swaps to
/// a generation strictly above the one it is serving, and among
/// candidates it always picks the highest — rolling *back* a bad
/// generation N means exporting its predecessor's weights as N+1.
///
/// Failure policy: a candidate that fails anywhere (load, freeze,
/// compatibility) is remembered by (directory, generation) and never
/// retried — re-export under a new generation instead. Serving is
/// untouched by failed candidates; the only observable effect is the
/// serve.checkpoint_rejects counter and a warning log.
///
/// Threading: PollOnce() may be called from any one thread at a time
/// (it serializes internally); Start() runs it on a background thread
/// every poll_interval_ms until Stop(). The router must outlive the
/// watcher. The watcher owns every policy it swaps in (the router
/// holds raw pointers), retaining the current and previous one.
class CheckpointWatcher {
 public:
  CheckpointWatcher(ServeRouter* router,
                    const CheckpointWatcherConfig& config);
  ~CheckpointWatcher();

  CheckpointWatcher(const CheckpointWatcher&) = delete;
  CheckpointWatcher& operator=(const CheckpointWatcher&) = delete;

  /// One deterministic scan-validate-swap pass (what the background
  /// thread runs; tests and benches call it directly).
  SwapResult PollOnce();

  /// Background polling; idempotent. Stop() is called by the
  /// destructor and blocks until the thread (and any in-flight poll)
  /// has finished.
  void Start();
  void Stop();

  /// Generation currently being served (initial_generation until the
  /// first successful swap).
  uint64_t generation() const;

  struct Stats {
    int64_t polls = 0;
    int64_t swaps = 0;
    int64_t rejects = 0;  // candidates that failed load/freeze/compat
    uint64_t generation = 0;
  };
  Stats stats() const;

 private:
  struct Candidate {
    uint64_t generation = 0;
    std::string dir;
  };

  /// Highest-generation un-rejected bundle above generation_; false
  /// when there is none. Caller holds mutex_.
  bool FindCandidateLocked(Candidate* candidate) const;
  void RejectLocked(const Candidate& candidate, const char* why);

  ServeRouter* router_;
  CheckpointWatcherConfig config_;

  mutable std::mutex mutex_;  // serializes polls; guards everything below
  uint64_t generation_;
  /// Policies this watcher swapped in, kept alive for the router's raw
  /// pointers: current_ is being served; previous_ covers stragglers
  /// holding the agent() accessor across a swap.
  std::unique_ptr<LoadedPolicy> current_;
  std::unique_ptr<LoadedPolicy> previous_;
  /// "dir#generation" keys of candidates that failed; never retried.
  std::set<std::string> rejected_;
  int64_t polls_ = 0;
  int64_t swaps_ = 0;
  int64_t reject_count_ = 0;

  obs::Gauge* metric_generation_ = nullptr;
  obs::Counter* metric_swaps_ = nullptr;
  obs::Counter* metric_rejects_ = nullptr;

  std::mutex thread_mutex_;  // guards thread_ / stop_ handshake
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_CHECKPOINT_WATCHER_H_
