#ifndef SIM2REC_SERVE_MANIFEST_MIGRATION_H_
#define SIM2REC_SERVE_MANIFEST_MIGRATION_H_

#include <map>
#include <string>
#include <vector>

namespace sim2rec {
namespace serve {

/// A parsed checkpoint manifest: key -> whitespace-separated value
/// tokens, exactly as serve/checkpoint.cc reads it off disk.
using ManifestMap = std::map<std::string, std::vector<std::string>>;

/// What a migration pass did to a legacy manifest (diagnostics; the
/// load status only needs `applied`).
struct ManifestMigration {
  int applied = 0;                 // key rewrites performed
  std::vector<std::string> notes;  // one human-readable line per rewrite
};

/// Rewrites the keys of a version-`version` manifest into the current
/// (v3) schema, in place — the config-evolution shim that lets a
/// serving binary keep loading checkpoints written before a key was
/// renamed or retyped. The table is versioned: each entry applies only
/// to manifests at or below the version in which the old spelling was
/// last legal, so a current manifest passes through untouched
/// (`applied == 0`) and the rewrite is idempotent.
///
/// Current table (see the version history on serve::SaveCheckpoint):
///  * v1/v2 -> v3 rename: `lstm_hidden` -> `extractor_hidden` (the key
///    predates the GRU cell option; the old name was cell-specific).
///  * v1/v2 -> v3 retype: `use_extractor`, `normalize_observations`,
///    `has_sadae` change from 0/1 integers to `false`/`true` booleans.
///
/// Returns false — leaving `manifest` in an unspecified state the
/// caller must discard — when a legacy value cannot be converted (a 0/1
/// flag that is neither, both spellings of a renamed key present);
/// LoadCheckpointEx reports that as kCorrupt, never a wrong config.
bool MigrateManifest(int version, ManifestMap* manifest,
                     ManifestMigration* migration);

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_MANIFEST_MIGRATION_H_
