#ifndef SIM2REC_SERVE_CHECKPOINT_H_
#define SIM2REC_SERVE_CHECKPOINT_H_

#include <memory>
#include <string>

#include "core/context_agent.h"
#include "infer/plan.h"
#include "sadae/sadae.h"

namespace sim2rec {
namespace serve {

/// Informational fields stored alongside the inference bundle (never
/// required for loading; unknown manifest keys are ignored so old
/// binaries can read newer checkpoints).
struct CheckpointMetadata {
  std::string variant;       // e.g. "Sim2Rec", "DR-OSI"
  uint64_t seed = 0;         // training seed
  int train_iterations = 0;  // PPO iterations the bundle was trained for
  /// Monotonic rollout generation. A continuous-training loop bumps it
  /// on every export; serve::CheckpointWatcher hot-swaps to the highest
  /// generation it can validate and never to a lower one. 0 means "not
  /// part of a generation sequence" — such bundles load fine but are
  /// never hot-swap candidates. The key is additive (old readers ignore
  /// it), so it rides on any manifest version.
  uint64_t generation = 0;
};

/// A checkpoint restored into a ready-to-serve agent. The SADAE (when
/// the bundle has one) is owned here because the ContextAgent only
/// borrows it.
struct LoadedPolicy {
  core::ContextAgentConfig config;
  CheckpointMetadata metadata;
  std::unique_ptr<sadae::Sadae> sadae;
  std::unique_ptr<core::ContextAgent> agent;
};

/// Why a load did not produce a policy — operationally distinct cases:
/// a kVersionUnsupported bundle is intact (upgrade the binary, don't
/// restore from backup); a kCorrupt one is damaged (restore from
/// backup, don't bother upgrading).
enum class LoadStatus {
  kOk = 0,
  /// No manifest at `dir` (not a checkpoint directory).
  kNotFound,
  /// The manifest declares a format version newer than this binary
  /// understands. The bundle may be perfectly valid.
  kVersionUnsupported,
  /// Anything else: unparsable manifest, implausible config, CRC
  /// mismatch, missing/truncated/corrupted weight files. A v2+
  /// manifest missing the `crc32.<file>` line for any weight file it
  /// lists is kCorrupt too — v2 declared those lines mandatory, so
  /// their absence means the manifest was tampered with or truncated,
  /// not that the integrity check is optional (pinned in
  /// tests/serve_test.cc).
  kCorrupt,
  /// The load SUCCEEDED, but only after serve::MigrateManifest rewrote
  /// legacy keys into the current schema (renamed/retyped between
  /// manifest versions — see serve/manifest_migration.h). The policy is
  /// fully usable; the distinct status lets operators see that a bundle
  /// predates the current config layout and should eventually be
  /// re-exported.
  kMigrated,
};

/// kOk and kMigrated both carry a usable policy.
inline bool LoadSucceeded(LoadStatus status) {
  return status == LoadStatus::kOk || status == LoadStatus::kMigrated;
}

struct LoadResult {
  LoadStatus status = LoadStatus::kCorrupt;
  /// Non-null exactly when LoadSucceeded(status).
  std::unique_ptr<LoadedPolicy> policy;
};

/// Cheap manifest peek (version + generation only, no weight I/O) —
/// what the CheckpointWatcher scans candidate directories with before
/// committing to a full validated load.
struct CheckpointInfo {
  int version = 0;
  uint64_t generation = 0;
};

/// False when `dir` has no parsable manifest or no version line.
bool ReadCheckpointInfo(const std::string& dir, CheckpointInfo* info);

/// Saves a full inference bundle into directory `dir` (created if
/// missing):
///   manifest.txt    ContextAgentConfig + SadaeConfig + metadata as
///                   text key/value lines; doubles in hexfloat so the
///                   round trip is bit-exact; one `crc32.<file>` line
///                   per binary file below (CRC-32, zlib polynomial)
///   agent.bin       policy + value + extractor LSTM/GRU + f weights
///                   (nn::SaveModule container)
///   sadae.bin       SADAE weights (only when the agent has a SADAE)
///   normalizer.bin  observation-normalizer running stats (count, mean,
///                   M2), only when normalization is enabled
/// Returns false on any I/O failure.
///
/// Compatibility policy (manifest line `sim2rec_checkpoint <version>`):
///  * The version is bumped ONLY when a correct load requires
///    understanding something new. Purely additive information rides on
///    new keys instead — readers ignore unknown keys, so old binaries
///    keep loading newer same-version bundles.
///  * Readers accept every version up to their own: v1 (no CRC lines,
///    the PR-2 format) still loads, with integrity checks skipped.
///  * A version beyond the reader's is reported as kVersionUnsupported,
///    never misread as corruption.
///  * Keys renamed or retyped by a version bump are carried forward by
///    the serve::MigrateManifest rename table, so older bundles keep
///    loading (status kMigrated instead of kOk).
/// History: v1 initial format; v2 adds required `crc32.<file>` lines
/// for each binary bundle file (a v2 bundle whose CRC lines are missing
/// or mismatched is kCorrupt); v3 renames `lstm_hidden` ->
/// `extractor_hidden` and retypes `use_extractor` /
/// `normalize_observations` / `has_sadae` from 0/1 to false/true
/// (v1/v2 bundles load via the migration shim as kMigrated). The
/// additive `generation` key (hot-swap ordering) rides on any version.
bool SaveCheckpoint(const std::string& dir, core::ContextAgent& agent,
                    const CheckpointMetadata& metadata = {});

/// Restores a bundle saved with SaveCheckpoint. The agent is rebuilt
/// from the manifest config, its parameters and normalizer statistics
/// are loaded bit-exactly, and the normalizer is frozen (deployment
/// never updates running stats). Never aborts; the status says *why* a
/// load failed (see LoadStatus).
LoadResult LoadCheckpointEx(const std::string& dir);

/// LoadCheckpointEx without the status: nullptr on any failure.
std::unique_ptr<LoadedPolicy> LoadCheckpoint(const std::string& dir);

/// Checkpoint-load-time entry point for float32 serving: freezes the
/// restored agent into an immutable infer::InferencePlan ready to hand
/// to InferenceServerConfig::plan / a ServeRouter. Returns null (with a
/// logged warning) when the agent fails freeze validation — never
/// aborts, so callers can fall back to the double path.
std::shared_ptr<const infer::InferencePlan> FreezePlan(
    const LoadedPolicy& policy);

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_CHECKPOINT_H_
