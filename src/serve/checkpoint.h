#ifndef SIM2REC_SERVE_CHECKPOINT_H_
#define SIM2REC_SERVE_CHECKPOINT_H_

#include <memory>
#include <string>

#include "core/context_agent.h"
#include "sadae/sadae.h"

namespace sim2rec {
namespace serve {

/// Informational fields stored alongside the inference bundle (never
/// required for loading; unknown manifest keys are ignored so old
/// binaries can read newer checkpoints).
struct CheckpointMetadata {
  std::string variant;       // e.g. "Sim2Rec", "DR-OSI"
  uint64_t seed = 0;         // training seed
  int train_iterations = 0;  // PPO iterations the bundle was trained for
};

/// A checkpoint restored into a ready-to-serve agent. The SADAE (when
/// the bundle has one) is owned here because the ContextAgent only
/// borrows it.
struct LoadedPolicy {
  core::ContextAgentConfig config;
  CheckpointMetadata metadata;
  std::unique_ptr<sadae::Sadae> sadae;
  std::unique_ptr<core::ContextAgent> agent;
};

/// Saves a full inference bundle into directory `dir` (created if
/// missing):
///   manifest.txt    ContextAgentConfig + SadaeConfig + metadata as
///                   text key/value lines; doubles in hexfloat so the
///                   round trip is bit-exact
///   agent.bin       policy + value + extractor LSTM/GRU + f weights
///                   (nn::SaveModule container)
///   sadae.bin       SADAE weights (only when the agent has a SADAE)
///   normalizer.bin  observation-normalizer running stats (count, mean,
///                   M2), only when normalization is enabled
/// Returns false on any I/O failure.
bool SaveCheckpoint(const std::string& dir, core::ContextAgent& agent,
                    const CheckpointMetadata& metadata = {});

/// Restores a bundle saved with SaveCheckpoint. The agent is rebuilt
/// from the manifest config, its parameters and normalizer statistics
/// are loaded bit-exactly, and the normalizer is frozen (deployment
/// never updates running stats). Returns nullptr on missing files,
/// corruption, or layout mismatch — never aborts.
std::unique_ptr<LoadedPolicy> LoadCheckpoint(const std::string& dir);

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_CHECKPOINT_H_
