#include "serve/checkpoint_watcher.h"

#include <chrono>
#include <filesystem>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"

namespace sim2rec {
namespace serve {
namespace {

std::string RejectKey(const std::string& dir, uint64_t generation) {
  return dir + "#" + std::to_string(generation);
}

}  // namespace

const char* SwapOutcomeName(SwapOutcome outcome) {
  switch (outcome) {
    case SwapOutcome::kNoCandidate:
      return "no_candidate";
    case SwapOutcome::kSwapped:
      return "swapped";
    case SwapOutcome::kLoadFailed:
      return "load_failed";
    case SwapOutcome::kFreezeFailed:
      return "freeze_failed";
    case SwapOutcome::kIncompatible:
      return "incompatible";
  }
  return "unknown";
}

CheckpointWatcher::CheckpointWatcher(ServeRouter* router,
                                     const CheckpointWatcherConfig& config)
    : router_(router), config_(config),
      generation_(config.initial_generation) {
  S2R_CHECK(router_ != nullptr);
  S2R_CHECK(!config_.dir.empty());
  S2R_CHECK(config_.poll_interval_ms >= 1);
  obs::MetricsRegistry& registry = config_.registry != nullptr
                                       ? *config_.registry
                                       : obs::MetricsRegistry::Global();
  metric_generation_ = registry.GetGauge("serve.checkpoint_generation");
  metric_swaps_ = registry.GetCounter("serve.checkpoint_swaps");
  metric_rejects_ = registry.GetCounter("serve.checkpoint_rejects");
  if (obs::Enabled() && generation_ != 0) {
    metric_generation_->SetMax(static_cast<double>(generation_));
  }
}

CheckpointWatcher::~CheckpointWatcher() { Stop(); }

bool CheckpointWatcher::FindCandidateLocked(Candidate* candidate) const {
  std::error_code ec;
  std::filesystem::directory_iterator it(config_.dir, ec);
  if (ec) return false;  // no directory yet: nothing to watch
  Candidate best;
  for (const auto& entry : it) {
    if (!entry.is_directory(ec) || ec) continue;
    CheckpointInfo info;
    if (!ReadCheckpointInfo(entry.path().string(), &info)) continue;
    // generation 0 = not part of a sequence, never a swap candidate.
    if (info.generation <= generation_) continue;
    if (rejected_.count(
            RejectKey(entry.path().string(), info.generation)) != 0) {
      continue;
    }
    if (info.generation > best.generation) {
      best.generation = info.generation;
      best.dir = entry.path().string();
    }
  }
  if (best.generation == 0) return false;
  *candidate = std::move(best);
  return true;
}

void CheckpointWatcher::RejectLocked(const Candidate& candidate,
                                     const char* why) {
  rejected_.insert(RejectKey(candidate.dir, candidate.generation));
  ++reject_count_;
  if (obs::Enabled()) metric_rejects_->Add(1);
  S2R_LOG_WARN(
      "checkpoint_watcher: rejecting generation %llu at '%s' (%s) — "
      "serving stays on generation %llu; re-export under a new "
      "generation to retry",
      static_cast<unsigned long long>(candidate.generation),
      candidate.dir.c_str(), why,
      static_cast<unsigned long long>(generation_));
}

SwapResult CheckpointWatcher::PollOnce() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++polls_;
  SwapResult result;

  Candidate candidate;
  if (!FindCandidateLocked(&candidate)) return result;  // kNoCandidate
  result.generation = candidate.generation;
  result.dir = candidate.dir;

  // The span covers the whole attempt — load, freeze, and the
  // drain-barrier swap — so a trace shows exactly how long serving
  // was exposed to swap work for each generation.
  S2R_TRACE_SPAN("serve/hot_swap", "generation",
                 static_cast<double>(candidate.generation));

  LoadResult loaded = LoadCheckpointEx(candidate.dir);
  if (!LoadSucceeded(loaded.status)) {
    result.outcome = SwapOutcome::kLoadFailed;
    result.load_status = loaded.status;
    RejectLocked(candidate, loaded.status == LoadStatus::kVersionUnsupported
                                ? "unsupported manifest version"
                                : "load failed");
    return result;
  }

  std::shared_ptr<const infer::InferencePlan> plan;
  if (config_.precision == Precision::kFloat32) {
    plan = FreezePlan(*loaded.policy);  // soft-fail, logs the reason
    if (plan == nullptr) {
      result.outcome = SwapOutcome::kFreezeFailed;
      RejectLocked(candidate, "freeze failed");
      return result;
    }
  }

  if (!router_->SwapModel(loaded.policy->agent.get(), std::move(plan))) {
    result.outcome = SwapOutcome::kIncompatible;
    RejectLocked(candidate, "session-incompatible config");
    return result;
  }

  previous_ = std::move(current_);
  current_ = std::move(loaded.policy);
  generation_ = candidate.generation;
  ++swaps_;
  if (obs::Enabled()) {
    metric_generation_->SetMax(static_cast<double>(generation_));
    metric_swaps_->Add(1);
  }
  S2R_LOG_INFO("checkpoint_watcher: now serving generation %llu from '%s'%s",
               static_cast<unsigned long long>(generation_),
               candidate.dir.c_str(),
               loaded.status == LoadStatus::kMigrated ? " (migrated manifest)"
                                                      : "");
  result.outcome = SwapOutcome::kSwapped;
  return result;
}

void CheckpointWatcher::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(thread_mutex_);
    while (!stop_) {
      lock.unlock();
      PollOnce();
      lock.lock();
      stop_cv_.wait_for(lock,
                        std::chrono::milliseconds(config_.poll_interval_ms),
                        [this] { return stop_; });
    }
  });
}

void CheckpointWatcher::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    stop_ = true;
    stop_cv_.notify_all();
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
}

uint64_t CheckpointWatcher::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

CheckpointWatcher::Stats CheckpointWatcher::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.polls = polls_;
  stats.swaps = swaps_;
  stats.rejects = reject_count_;
  stats.generation = generation_;
  return stats;
}

}  // namespace serve
}  // namespace sim2rec
