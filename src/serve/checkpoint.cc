#include "serve/checkpoint.h"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "nn/serialize.h"
#include "serve/manifest_migration.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace sim2rec {
namespace serve {
namespace {

// v2 = v1 + required crc32.<file> integrity lines; v3 renames
// lstm_hidden -> extractor_hidden and retypes the 0/1 flags to
// false/true (legacy bundles load through MigrateManifest). See the
// compatibility policy on SaveCheckpoint in the header.
constexpr int kManifestVersion = 3;
constexpr uint32_t kNormMagic = 0x53324e31;  // "S2N1"

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.txt";
}
std::string AgentPath(const std::string& dir) { return dir + "/agent.bin"; }
std::string SadaePath(const std::string& dir) { return dir + "/sadae.bin"; }
std::string NormalizerPath(const std::string& dir) {
  return dir + "/normalizer.bin";
}

/// Doubles are written in hexfloat ("%a") so the text manifest loses no
/// precision: strtod parses the exact bit pattern back.
std::string FormatDouble(double v) {
  std::ostringstream out;
  out << std::hexfloat << v;
  return out.str();
}

void WriteInts(std::ostream& out, const std::string& key,
               const std::vector<int>& values) {
  out << key;
  for (int v : values) out << ' ' << v;
  out << '\n';
}

void WriteDoubles(std::ostream& out, const std::string& key,
                  const std::vector<double>& values) {
  out << key;
  for (double v : values) out << ' ' << FormatDouble(v);
  out << '\n';
}

using Manifest = std::map<std::string, std::vector<std::string>>;

bool ParseManifest(const std::string& path, Manifest* manifest) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key) || key.empty() || key[0] == '#') continue;
    std::vector<std::string> values;
    std::string value;
    while (tokens >> value) values.push_back(value);
    (*manifest)[key] = std::move(values);
  }
  return !in.bad();
}

bool GetInt(const Manifest& m, const std::string& key, int* out) {
  auto it = m.find(key);
  if (it == m.end() || it->second.size() != 1) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(it->second[0].c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

/// v3 boolean keys are spelled exactly `false`/`true` — 0/1 in a v3+
/// manifest is a corruption signal, not an alternative encoding (the
/// migration shim is the only place legacy spellings are accepted).
bool GetBool(const Manifest& m, const std::string& key, bool* out) {
  auto it = m.find(key);
  if (it == m.end() || it->second.size() != 1) return false;
  if (it->second[0] == "false") {
    *out = false;
  } else if (it->second[0] == "true") {
    *out = true;
  } else {
    return false;
  }
  return true;
}

bool GetU64(const Manifest& m, const std::string& key, uint64_t* out) {
  auto it = m.find(key);
  if (it == m.end() || it->second.size() != 1) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v =
      std::strtoull(it->second[0].c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& token, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool GetDouble(const Manifest& m, const std::string& key, double* out) {
  auto it = m.find(key);
  if (it == m.end() || it->second.size() != 1) return false;
  return ParseDouble(it->second[0], out);
}

bool GetIntList(const Manifest& m, const std::string& key,
                std::vector<int>* out) {
  auto it = m.find(key);
  if (it == m.end()) return false;
  out->clear();
  for (const std::string& token : it->second) {
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(token.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') return false;
    out->push_back(static_cast<int>(v));
  }
  return true;
}

bool GetDoubleList(const Manifest& m, const std::string& key,
                   std::vector<double>* out) {
  auto it = m.find(key);
  if (it == m.end()) return false;
  out->clear();
  for (const std::string& token : it->second) {
    double v = 0.0;
    if (!ParseDouble(token, &v)) return false;
    out->push_back(v);
  }
  return true;
}

bool SaveNormalizer(const std::string& path,
                    const rl::ObservationNormalizer& normalizer) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  const uint32_t magic = kNormMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const int64_t count = normalizer.count();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  nn::WriteTensor(out, normalizer.mean());
  nn::WriteTensor(out, normalizer.m2());
  return out.good();
}

bool LoadNormalizer(const std::string& path,
                    rl::ObservationNormalizer* normalizer) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in.good() || magic != kNormMagic) return false;
  int64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || count < 0) return false;
  nn::Tensor mean, m2;
  if (!nn::ReadTensor(in, &mean) || !nn::ReadTensor(in, &m2)) return false;
  if (mean.rows() != 1 || mean.cols() != normalizer->dim() ||
      !m2.SameShape(mean)) {
    return false;
  }
  normalizer->RestoreStats(count, mean, m2);
  return true;
}

/// Basic sanity on the restored config before the ContextAgent
/// constructor S2R_CHECKs it (a corrupted manifest must fail the load,
/// not abort the process).
bool ConfigPlausible(const core::ContextAgentConfig& config,
                     bool has_sadae, const sadae::SadaeConfig& sadae) {
  if (config.obs_dim <= 0 || config.action_dim <= 0) return false;
  if (config.use_extractor && config.lstm_hidden <= 0) return false;
  if (!config.action_bias.empty() &&
      static_cast<int>(config.action_bias.size()) != config.action_dim) {
    return false;
  }
  for (int h : config.policy_hidden)
    if (h <= 0) return false;
  for (int h : config.value_hidden)
    if (h <= 0) return false;
  if (has_sadae) {
    if (!config.use_extractor) return false;
    if (config.f_out <= 0) return false;
    for (int h : config.f_hidden)
      if (h <= 0) return false;
    if (sadae.state_dim < 1 || sadae.categorical_dim < 0 ||
        sadae.action_dim < 0 || sadae.latent_dim < 1) {
      return false;
    }
    const int set_dim = sadae.input_dim();
    if (set_dim != config.obs_dim &&
        set_dim != config.obs_dim + config.action_dim) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool SaveCheckpoint(const std::string& dir, core::ContextAgent& agent,
                    const CheckpointMetadata& metadata) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  // Binary files first: their CRCs go into the manifest, and a crash
  // mid-save leaves no manifest claiming files that were never written.
  sadae::Sadae* sadae_model = agent.sadae();
  if (!nn::SaveModule(AgentPath(dir), agent)) return false;
  if (sadae_model != nullptr) {
    if (!nn::SaveModule(SadaePath(dir), *sadae_model)) return false;
  }
  if (agent.normalizer() != nullptr) {
    if (!SaveNormalizer(NormalizerPath(dir), *agent.normalizer())) {
      return false;
    }
  }

  // The manifest is staged (tmp + rename) and written last: a
  // CheckpointWatcher polling the directory either sees no manifest
  // (not a candidate yet) or a complete one whose CRC lines cover
  // fully-written weight files — never a half-published bundle it
  // would reject as corrupt.
  const core::ContextAgentConfig& config = agent.config();
  const std::string manifest_tmp = ManifestPath(dir) + ".tmp";
  std::ofstream out(manifest_tmp, std::ios::trunc);
  if (!out.good()) return false;
  out << "sim2rec_checkpoint " << kManifestVersion << '\n';
  out << "obs_dim " << config.obs_dim << '\n';
  out << "action_dim " << config.action_dim << '\n';
  out << "use_extractor " << (config.use_extractor ? "true" : "false")
      << '\n';
  out << "extractor_cell "
      << (config.extractor_cell ==
                  core::ContextAgentConfig::ExtractorCell::kLstm
              ? "lstm"
              : "gru")
      << '\n';
  // v3 spelling; v1/v2 wrote this as `lstm_hidden` (see kRenames in
  // serve/manifest_migration.cc).
  out << "extractor_hidden " << config.lstm_hidden << '\n';
  WriteInts(out, "f_hidden", config.f_hidden);
  out << "f_out " << config.f_out << '\n';
  WriteInts(out, "policy_hidden", config.policy_hidden);
  WriteInts(out, "value_hidden", config.value_hidden);
  WriteDoubles(out, "action_bias", config.action_bias);
  out << "init_log_std " << FormatDouble(config.init_log_std) << '\n';
  out << "min_log_std " << FormatDouble(config.min_log_std) << '\n';
  out << "max_log_std " << FormatDouble(config.max_log_std) << '\n';
  out << "normalize_observations "
      << (config.normalize_observations ? "true" : "false") << '\n';

  out << "has_sadae " << (sadae_model != nullptr ? "true" : "false")
      << '\n';
  if (sadae_model != nullptr) {
    const sadae::SadaeConfig& sc = sadae_model->config();
    out << "sadae_state_dim " << sc.state_dim << '\n';
    out << "sadae_categorical_dim " << sc.categorical_dim << '\n';
    out << "sadae_action_dim " << sc.action_dim << '\n';
    out << "sadae_latent_dim " << sc.latent_dim << '\n';
    WriteInts(out, "sadae_encoder_hidden", sc.encoder_hidden);
    WriteInts(out, "sadae_decoder_hidden", sc.decoder_hidden);
    out << "sadae_kl_weight " << FormatDouble(sc.kl_weight) << '\n';
  }

  if (!metadata.variant.empty()) out << "variant " << metadata.variant
                                     << '\n';
  out << "seed " << metadata.seed << '\n';
  out << "train_iterations " << metadata.train_iterations << '\n';
  // Additive (hot-swap ordering): only written when the bundle is part
  // of a generation sequence, so pre-watcher bundles stay byte-for-byte
  // reproducible.
  if (metadata.generation != 0) {
    out << "generation " << metadata.generation << '\n';
  }

  // v2 integrity lines: crc32.<file> <decimal crc> per binary file.
  const auto write_crc = [&](const std::string& path,
                             const char* name) -> bool {
    uint32_t crc = 0;
    if (!Crc32OfFile(path, &crc)) return false;
    out << "crc32." << name << ' ' << crc << '\n';
    return true;
  };
  if (!write_crc(AgentPath(dir), "agent.bin")) return false;
  if (sadae_model != nullptr &&
      !write_crc(SadaePath(dir), "sadae.bin")) {
    return false;
  }
  if (agent.normalizer() != nullptr &&
      !write_crc(NormalizerPath(dir), "normalizer.bin")) {
    return false;
  }
  if (!out.good()) return false;
  out.close();
  std::filesystem::rename(manifest_tmp, ManifestPath(dir), ec);
  return !ec;
}

LoadResult LoadCheckpointEx(const std::string& dir) {
  LoadResult result;
  std::error_code ec;
  if (!std::filesystem::exists(ManifestPath(dir), ec) || ec) {
    result.status = LoadStatus::kNotFound;
    return result;
  }
  result.status = LoadStatus::kCorrupt;  // until proven otherwise
  Manifest manifest;
  if (!ParseManifest(ManifestPath(dir), &manifest)) return result;
  int version = 0;
  if (!GetInt(manifest, "sim2rec_checkpoint", &version) || version < 1) {
    return result;
  }
  if (version > kManifestVersion) {
    // Newer than this binary understands; likely intact, so say so
    // rather than lumping it in with corruption.
    result.status = LoadStatus::kVersionUnsupported;
    return result;
  }

  // Carry legacy manifests forward into the current key schema before
  // any key is read. A table miss is fine (the key checks below report
  // it); an unconvertible value is kCorrupt.
  ManifestMigration migration;
  if (!MigrateManifest(version, &manifest, &migration)) return result;

  // v2+: verify each binary file's CRC before parsing any of it. v1
  // bundles predate the lines, so the checks are skipped.
  const auto crc_ok = [&](const std::string& path,
                          const char* name) -> bool {
    if (version < 2) return true;
    uint64_t expected = 0;
    if (!GetU64(manifest, std::string("crc32.") + name, &expected) ||
        expected > 0xFFFFFFFFull) {
      return false;  // a v2 manifest must carry the line
    }
    uint32_t actual = 0;
    if (!Crc32OfFile(path, &actual)) return false;
    return actual == static_cast<uint32_t>(expected);
  };

  auto loaded = std::make_unique<LoadedPolicy>();
  core::ContextAgentConfig& config = loaded->config;
  bool use_extractor = false, normalize = false, has_sadae = false;
  if (!GetInt(manifest, "obs_dim", &config.obs_dim) ||
      !GetInt(manifest, "action_dim", &config.action_dim) ||
      !GetBool(manifest, "use_extractor", &use_extractor) ||
      !GetInt(manifest, "extractor_hidden", &config.lstm_hidden) ||
      !GetInt(manifest, "f_out", &config.f_out) ||
      !GetIntList(manifest, "f_hidden", &config.f_hidden) ||
      !GetIntList(manifest, "policy_hidden", &config.policy_hidden) ||
      !GetIntList(manifest, "value_hidden", &config.value_hidden) ||
      !GetDoubleList(manifest, "action_bias", &config.action_bias) ||
      !GetDouble(manifest, "init_log_std", &config.init_log_std) ||
      !GetDouble(manifest, "min_log_std", &config.min_log_std) ||
      !GetDouble(manifest, "max_log_std", &config.max_log_std) ||
      !GetBool(manifest, "normalize_observations", &normalize) ||
      !GetBool(manifest, "has_sadae", &has_sadae)) {
    return result;
  }
  config.use_extractor = use_extractor;
  config.normalize_observations = normalize;
  auto cell_it = manifest.find("extractor_cell");
  if (cell_it == manifest.end() || cell_it->second.size() != 1) {
    return result;
  }
  if (cell_it->second[0] == "lstm") {
    config.extractor_cell =
        core::ContextAgentConfig::ExtractorCell::kLstm;
  } else if (cell_it->second[0] == "gru") {
    config.extractor_cell = core::ContextAgentConfig::ExtractorCell::kGru;
  } else {
    return result;
  }

  sadae::SadaeConfig sadae_config;
  if (has_sadae) {
    if (!GetInt(manifest, "sadae_state_dim", &sadae_config.state_dim) ||
        !GetInt(manifest, "sadae_categorical_dim",
                &sadae_config.categorical_dim) ||
        !GetInt(manifest, "sadae_action_dim", &sadae_config.action_dim) ||
        !GetInt(manifest, "sadae_latent_dim", &sadae_config.latent_dim) ||
        !GetIntList(manifest, "sadae_encoder_hidden",
                    &sadae_config.encoder_hidden) ||
        !GetIntList(manifest, "sadae_decoder_hidden",
                    &sadae_config.decoder_hidden) ||
        !GetDouble(manifest, "sadae_kl_weight", &sadae_config.kl_weight)) {
      return result;
    }
  }
  if (!ConfigPlausible(config, has_sadae, sadae_config)) {
    return result;
  }

  auto variant_it = manifest.find("variant");
  if (variant_it != manifest.end() && variant_it->second.size() == 1) {
    loaded->metadata.variant = variant_it->second[0];
  }
  GetU64(manifest, "seed", &loaded->metadata.seed);
  GetInt(manifest, "train_iterations",
         &loaded->metadata.train_iterations);
  GetU64(manifest, "generation", &loaded->metadata.generation);

  // Rebuild the modules; initial weights are irrelevant (LoadModule
  // overwrites every parameter bit-exactly or fails).
  if (!crc_ok(AgentPath(dir), "agent.bin")) return result;
  if (has_sadae && !crc_ok(SadaePath(dir), "sadae.bin")) return result;

  Rng init_rng(0);
  if (has_sadae) {
    loaded->sadae = std::make_unique<sadae::Sadae>(sadae_config, init_rng);
    if (!nn::LoadModule(SadaePath(dir), *loaded->sadae)) return result;
  }
  loaded->agent = std::make_unique<core::ContextAgent>(
      config, loaded->sadae.get(), init_rng);
  if (!nn::LoadModule(AgentPath(dir), *loaded->agent)) return result;

  if (loaded->agent->normalizer() != nullptr) {
    if (!crc_ok(NormalizerPath(dir), "normalizer.bin")) return result;
    if (!LoadNormalizer(NormalizerPath(dir),
                        loaded->agent->normalizer())) {
      return result;
    }
    // Deployment never updates running statistics.
    loaded->agent->normalizer()->Freeze();
  }
  if (migration.applied > 0) {
    for (const std::string& note : migration.notes) {
      S2R_LOG_INFO("LoadCheckpointEx: migrated v%d manifest: %s", version,
                   note.c_str());
    }
    result.status = LoadStatus::kMigrated;
  } else {
    result.status = LoadStatus::kOk;
  }
  result.policy = std::move(loaded);
  return result;
}

bool ReadCheckpointInfo(const std::string& dir, CheckpointInfo* info) {
  Manifest manifest;
  if (!ParseManifest(ManifestPath(dir), &manifest)) return false;
  int version = 0;
  if (!GetInt(manifest, "sim2rec_checkpoint", &version) || version < 1) {
    return false;
  }
  info->version = version;
  info->generation = 0;
  GetU64(manifest, "generation", &info->generation);
  return true;
}

std::unique_ptr<LoadedPolicy> LoadCheckpoint(const std::string& dir) {
  return LoadCheckpointEx(dir).policy;
}

std::shared_ptr<const infer::InferencePlan> FreezePlan(
    const LoadedPolicy& policy) {
  if (policy.agent == nullptr) {
    S2R_LOG_WARN("FreezePlan: loaded policy has no agent");
    return nullptr;
  }
  infer::FreezeResult frozen = infer::InferencePlan::Freeze(*policy.agent);
  if (!frozen.ok()) {
    S2R_LOG_WARN("FreezePlan: %s — serving stays on the double path",
                 frozen.error.c_str());
    return nullptr;
  }
  S2R_LOG_INFO("FreezePlan: %s", frozen.plan->Describe().c_str());
  return std::move(frozen.plan);
}

}  // namespace serve
}  // namespace sim2rec
