#ifndef SIM2REC_SERVE_SESSION_STORE_H_
#define SIM2REC_SERVE_SESSION_STORE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nn/tensor.h"

namespace sim2rec {
namespace serve {

/// Shapes of the per-user recurrent serving state — the serving analogue
/// of the rollout collector's batch state, one row per user instead of
/// one batch per shard.
struct SessionDims {
  int hidden = 0;      // extractor hidden units (0 = feed-forward agent)
  bool has_cell = false;  // LSTM carries a cell tensor, GRU does not
  int action_dim = 0;
  int latent_dim = 0;  // SADAE group-embedding width (0 = no SADAE)
};

/// One user's in-flight session: extractor hidden/cell, the previous
/// (raw, pre-guard) action the extractor conditions on, and the latest
/// SADAE group embedding v — everything ContextAgent::ServeStep threads
/// through, plus bookkeeping for TTL/LRU.
struct Session {
  nn::Tensor h;            // [1 x hidden] (empty for feed-forward)
  nn::Tensor c;            // [1 x hidden] (LSTM only)
  nn::Tensor prev_action;  // [1 x action_dim]
  nn::Tensor v;            // [1 x latent_dim] (empty without SADAE)
  int64_t last_used_ms = 0;
  int64_t steps = 0;       // serving steps taken in this session
};

struct SessionStoreConfig {
  /// Memory cap for resident sessions; the least-recently-used session
  /// is evicted when a commit would exceed it. At least one session is
  /// always retained.
  size_t max_bytes = size_t{16} << 20;
  /// Sessions idle longer than this are expired on next access and the
  /// user re-enters with fresh zeroed state; 0 disables expiry.
  int64_t ttl_ms = 30 * 60 * 1000;
};

/// Thread-safe per-user session store with O(1) lookup, LRU eviction
/// under the byte cap, and TTL expiry. Access pattern (per request,
/// done by the InferenceServer): Acquire -> run the model -> Commit.
/// State is copied out/in rather than referenced, so concurrent
/// requests for *different* users never alias; two concurrent requests
/// for the *same* user are each consistent but last-commit-wins (the
/// caller is expected to serialize a single user's requests, as a real
/// session does).
class SessionStore {
 public:
  SessionStore(const SessionDims& dims, const SessionStoreConfig& config);

  /// The user's current session, or a fresh zeroed one on miss / TTL
  /// expiry. Refreshes the LRU position and last-used time of a hit.
  Session Acquire(uint64_t user_id, int64_t now_ms);

  /// Stores the advanced session at the front of the LRU list, evicting
  /// from the cold end while over the byte cap.
  void Commit(uint64_t user_id, Session session, int64_t now_ms);

  /// Drops a user's session (explicit session end). Returns true when
  /// one existed.
  bool Erase(uint64_t user_id);

  /// A zeroed session (what an unseen or expired user starts from).
  Session FreshSession() const;

  /// One spilled session — the unit of handoff and snapshot I/O.
  using SessionRecord = std::pair<uint64_t, Session>;

  /// Copies every resident session, most recently used first.
  std::vector<SessionRecord> ExportSessions() const;

  /// Removes and returns the sessions whose user id satisfies `pred`,
  /// most recently used first — the shard-handoff primitive: a router
  /// extracts exactly the users a ring change reassigns and replays
  /// them into the new owner via Restore.
  std::vector<SessionRecord> ExtractIf(
      const std::function<bool(uint64_t)>& pred);

  /// Reinserts a spilled session. Unlike Commit it preserves the
  /// session's recorded last_used_ms (a handoff or restart must not
  /// rejuvenate idle sessions past their TTL) and inserts at the cold
  /// end of the LRU list, so calling it with ExportSessions/ExtractIf
  /// output (MRU first) reproduces the source store's eviction order.
  /// Evicts from the cold end if the byte cap is exceeded.
  void Restore(uint64_t user_id, Session session);

  /// Writes all resident sessions to `path` as a binary snapshot
  /// (magic + version + CRC32 + dims + sessions; doubles as raw
  /// IEEE-754 bytes, so restored recurrent state is bit-exact). Writes
  /// to a temporary file and renames, so a crash mid-save never
  /// clobbers a previous good snapshot. Returns false on I/O failure.
  bool Save(const std::string& path) const;

  /// Replaces the resident sessions with a snapshot written by Save.
  /// Staged like serve::LoadCheckpoint: the whole file is parsed and
  /// CRC-checked before the store is touched, so a missing, truncated
  /// or corrupted snapshot (or one with mismatched dims) returns false
  /// and leaves the store exactly as it was — never aborts. Sessions
  /// beyond the byte cap are dropped coldest-first.
  bool Load(const std::string& path);

  size_t size() const;
  size_t bytes() const { return BytesPerSession() * size(); }
  /// Estimated resident bytes of one session (tensor payloads + fixed
  /// container overhead) — the unit of the max_bytes cap.
  size_t BytesPerSession() const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;    // LRU evictions under the byte cap
    uint64_t expirations = 0;  // TTL expiries
  };
  Stats stats() const;

  const SessionDims& dims() const { return dims_; }
  const SessionStoreConfig& config() const { return config_; }

 private:
  using LruList = std::list<std::pair<uint64_t, Session>>;

  SessionDims dims_;
  SessionStoreConfig config_;
  size_t max_sessions_ = 0;  // derived from max_bytes / BytesPerSession

  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_map<uint64_t, LruList::iterator> index_;
  Stats stats_;
};

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_SESSION_STORE_H_
