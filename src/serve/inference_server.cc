#include "serve/inference_server.h"

#include <algorithm>
#include <functional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/trajectory_log.h"
#include "util/logging.h"

namespace sim2rec {
namespace serve {

SessionDims SessionDimsFor(const core::ContextAgent& agent) {
  const core::ContextAgentConfig& config = agent.config();
  SessionDims dims;
  if (config.use_extractor) {
    dims.hidden = config.lstm_hidden;
    dims.has_cell = config.extractor_cell ==
                    core::ContextAgentConfig::ExtractorCell::kLstm;
  }
  dims.action_dim = config.action_dim;
  dims.latent_dim =
      agent.sadae() != nullptr ? agent.sadae()->latent_dim() : 0;
  return dims;
}

InferenceServer::InferenceServer(const core::ContextAgent* agent,
                                 const InferenceServerConfig& config,
                                 core::ThreadPool* pool)
    : agent_(agent), config_(config), pool_(pool),
      epoch_(std::chrono::steady_clock::now()) {
  S2R_CHECK(agent != nullptr);
  S2R_CHECK(config.max_batch_size >= 1);
  S2R_CHECK(config.max_queue_delay_us >= 0);
  S2R_CHECK(config.action_low.size() == config.action_high.size());
  S2R_CHECK(config.action_low.empty() ||
            static_cast<int>(config.action_low.size()) ==
                agent->config().action_dim);
  store_ = std::make_unique<SessionStore>(SessionDimsFor(*agent),
                                          config.sessions);
  if (config_.precision == Precision::kFloat32) {
    plan_ = config_.plan;
    if (plan_ == nullptr) {
      infer::FreezeResult frozen = infer::InferencePlan::Freeze(*agent);
      S2R_CHECK_MSG(frozen.ok(),
                    ("float32 serving requested but the agent failed to "
                     "freeze: " +
                     frozen.error)
                        .c_str());
      plan_ = std::move(frozen.plan);
    }
    workspace_ = std::make_unique<infer::Workspace>(
        plan_->CreateWorkspace(config_.max_batch_size));
  }
  obs::MetricsRegistry& registry = config_.registry != nullptr
                                       ? *config_.registry
                                       : obs::MetricsRegistry::Global();
  metric_requests_ = registry.GetCounter("serve.requests");
  metric_batches_ = registry.GetCounter("serve.batches");
  metric_exec_clamps_ = registry.GetCounter("serve.exec_clamps");
  metric_latency_us_ = registry.GetHistogram("serve.latency_us");
  metric_batch_occupancy_ = registry.GetHistogram("serve.batch_occupancy");
  metric_queue_depth_ = registry.GetGauge("serve.queue_depth");
  if (config_.micro_batching) {
    batcher_ = std::thread([this] { BatcherLoop(); });
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

void InferenceServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

bool InferenceServer::SwapModel(
    const core::ContextAgent* agent,
    std::shared_ptr<const infer::InferencePlan> plan) {
  if (agent == nullptr) return false;
  // Session compatibility: resident recurrent state must remain
  // shape-valid under the new model, and the request contract
  // (obs_dim) must not change under live clients.
  const SessionDims current = store_->dims();
  const SessionDims next = SessionDimsFor(*agent);
  if (next.hidden != current.hidden || next.has_cell != current.has_cell ||
      next.action_dim != current.action_dim ||
      next.latent_dim != current.latent_dim) {
    return false;
  }
  if (agent->config().obs_dim != agent_->config().obs_dim) return false;
  if (config_.precision == Precision::kFloat32 && plan == nullptr) {
    return false;
  }

  // Both locks: serial_mutex_ fences the non-batching inline path,
  // mutex_ fences the batcher (which holds it except while running
  // ProcessBatch — and the caller's drain guarantee means no batch is
  // running). Acquiring mutex_ here and releasing it before the
  // batcher's next acquisition is what makes the new pointers visible
  // to the batcher thread without any atomics on the hot path.
  std::scoped_lock lock(serial_mutex_, mutex_);
  S2R_CHECK_MSG(queue_.empty(),
                "SwapModel with queued requests — caller failed to drain");
  agent_ = agent;
  config_.plan = plan;
  plan_ = std::move(plan);
  if (config_.precision == Precision::kFloat32) {
    workspace_ = std::make_unique<infer::Workspace>(
        plan_->CreateWorkspace(config_.max_batch_size));
  }
  return true;
}

int64_t InferenceServer::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

ServeReply InferenceServer::Act(uint64_t user_id, const nn::Tensor& obs) {
  S2R_CHECK(obs.rows() == 1);
  S2R_CHECK(obs.cols() == agent_->config().obs_dim);
  Pending pending;
  pending.user_id = user_id;
  pending.obs = &obs;
  pending.enqueued = std::chrono::steady_clock::now();
  pending.trace_id = obs::CurrentTraceId();

  if (!config_.micro_batching) {
    // Serial reference path: one request, inline on the caller.
    S2R_TRACE_SPAN("serve/act", "shard",
                   static_cast<double>(config_.shard_id));
    std::lock_guard<std::mutex> serial(serial_mutex_);
    ProcessBatch({&pending});
    const double latency_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - pending.enqueued)
            .count();
    latency_.Record(latency_us);
    if (obs::Enabled()) {
      metric_latency_us_->RecordWithExemplar(
          latency_us, pending.trace_id, "shard",
          static_cast<double>(config_.shard_id), "batch", 1.0);
    }
    return pending.reply;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    S2R_CHECK_MSG(!stop_, "InferenceServer::Act after Shutdown");
    queue_.push_back(&pending);
    const int64_t depth =
        queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (obs::Enabled()) {
      metric_queue_depth_->Set(static_cast<double>(depth));
    }
  }
  queue_cv_.notify_one();

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending.done; });
  return pending.reply;
}

void InferenceServer::EndSession(uint64_t user_id) {
  store_->Erase(user_id);
}

void InferenceServer::BatcherLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained
      continue;
    }
    // A request is pending: hold the door open briefly for stragglers
    // so concurrent callers coalesce into one forward pass.
    if (config_.max_queue_delay_us > 0 &&
        static_cast<int>(queue_.size()) < config_.max_batch_size) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(config_.max_queue_delay_us);
      queue_cv_.wait_until(lock, deadline, [&] {
        return stop_ ||
               static_cast<int>(queue_.size()) >= config_.max_batch_size;
      });
    }
    std::vector<Pending*> batch;
    const int take = std::min(static_cast<int>(queue_.size()),
                              config_.max_batch_size);
    batch.reserve(take);
    for (int i = 0; i < take; ++i) {
      batch.push_back(queue_.front());
      queue_.pop_front();
    }
    const int64_t depth =
        queue_depth_.fetch_sub(take, std::memory_order_relaxed) - take;
    if (obs::Enabled()) {
      metric_queue_depth_->Set(static_cast<double>(depth));
    }
    lock.unlock();

    {
      S2R_TRACE_SPAN("serve/batch", "shard",
                     static_cast<double>(config_.shard_id), "rows",
                     static_cast<double>(batch.size()));
      ProcessBatch(batch);
    }

    const auto fulfilled = std::chrono::steady_clock::now();
    for (const Pending* p : batch) {
      const double latency_us = std::chrono::duration<double, std::micro>(
                                    fulfilled - p->enqueued)
                                    .count();
      latency_.Record(latency_us);
      if (obs::Enabled()) {
        metric_latency_us_->RecordWithExemplar(
            latency_us, p->trace_id, "shard",
            static_cast<double>(config_.shard_id), "batch",
            static_cast<double>(batch.size()));
      }
    }
    lock.lock();
    for (Pending* p : batch) p->done = true;
    done_cv_.notify_all();
  }
}

void InferenceServer::ProcessBatch(const std::vector<Pending*>& batch) {
  const int k = static_cast<int>(batch.size());
  S2R_CHECK(k >= 1);
  const int64_t now_ms = NowMs();
  const SessionDims& dims = store_->dims();
  const core::ContextAgentConfig& config = agent_->config();

  // Gather sessions serially so the store's LRU bookkeeping follows
  // arrival order deterministically.
  std::vector<Session> sessions(k);
  for (int i = 0; i < k; ++i) {
    sessions[i] = store_->Acquire(batch[i]->user_id, now_ms);
  }

  const auto run_rows = [&](const std::function<void(int)>& fn) {
    if (pool_ != nullptr && k > 1) {
      pool_->ParallelFor(k, fn);
    } else {
      for (int i = 0; i < k; ++i) fn(i);
    }
  };

  // Pack per-user rows into one batch (row i belongs to request i —
  // writes never alias, so the pool fan-out is race-free and the
  // result is independent of the thread count).
  nn::Tensor obs(k, config.obs_dim);
  core::ContextAgent::ServeBatch state;
  if (dims.hidden > 0) {
    state.h = nn::Tensor(k, dims.hidden);
    if (dims.has_cell) state.c = nn::Tensor(k, dims.hidden);
  }
  state.prev_actions = nn::Tensor(k, dims.action_dim);
  run_rows([&](int i) {
    obs.SetRow(i, *batch[i]->obs);
    if (dims.hidden > 0) {
      state.h.SetRow(i, sessions[i].h);
      if (dims.has_cell) state.c.SetRow(i, sessions[i].c);
    }
    state.prev_actions.SetRow(i, sessions[i].prev_action);
  });

  // One coalesced forward pass (policy + value + extractor + SADAE).
  core::ContextAgent::ServeOutput out;
  {
    S2R_TRACE_SPAN("serve/forward", "shard",
                   static_cast<double>(config_.shard_id), "rows",
                   static_cast<double>(k));
    out = plan_ != nullptr ? plan_->ServeStep(obs, &state, workspace_.get())
                           : agent_->ServeStep(obs, &state);
  }

  // Unpack: advance each session, apply the F_exec guard, fill replies.
  const bool guard = !config_.action_low.empty();
  run_rows([&](int i) {
    Session& session = sessions[i];
    if (dims.hidden > 0) {
      session.h = state.h.Row(i);
      if (dims.has_cell) session.c = state.c.Row(i);
    }
    session.prev_action = state.prev_actions.Row(i);
    if (dims.latent_dim > 0) session.v = out.v.Row(i);
    ++session.steps;

    ServeReply& reply = batch[i]->reply;
    reply.action = out.actions.Row(i);
    reply.value = out.values(i, 0);
    reply.batch_size = k;
    reply.exec_clamped = false;
    if (guard) {
      for (int c = 0; c < dims.action_dim; ++c) {
        const double lo = config_.action_low[c] - config_.exec_tolerance;
        const double hi = config_.action_high[c] + config_.exec_tolerance;
        double& a = reply.action(0, c);
        if (a < lo) {
          a = lo;
          reply.exec_clamped = true;
        } else if (a > hi) {
          a = hi;
          reply.exec_clamped = true;
        }
      }
      if (reply.exec_clamped) {
        exec_clamps_.fetch_add(1, std::memory_order_relaxed);
        if (obs::Enabled()) metric_exec_clamps_->Add(1);
      }
    }
  });

  // Opt-in trajectory logging, serially (one producer per sink) and
  // strictly read-only on the reply: the logged action is the
  // post-guard action the caller receives, the reward slot carries the
  // critic's value estimate (serving observes no environment reward),
  // and the step index is the 0-based serving step just taken.
  if (config_.trajectory_sink != nullptr) {
    for (int i = 0; i < k; ++i) {
      const ServeReply& reply = batch[i]->reply;
      config_.trajectory_sink->Append(
          batch[i]->user_id,
          static_cast<uint32_t>(sessions[i].steps - 1), reply.value,
          batch[i]->obs->data(), reply.action.data());
    }
  }

  // Commit serially, again in arrival order.
  {
    S2R_TRACE_SPAN("serve/commit", "shard",
                   static_cast<double>(config_.shard_id), "rows",
                   static_cast<double>(k));
    for (int i = 0; i < k; ++i) {
      store_->Commit(batch[i]->user_id, std::move(sessions[i]), now_ms);
    }
  }
  occupancy_.Record(k);
  if (obs::Enabled()) {
    metric_requests_->Add(k);
    metric_batches_->Add(1);
    metric_batch_occupancy_->Record(static_cast<double>(k));
  }
}

InferenceServerStats InferenceServer::stats() const {
  InferenceServerStats stats;
  stats.requests = occupancy_.requests();
  stats.batches = occupancy_.batches();
  stats.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  stats.mean_batch_occupancy = occupancy_.mean();
  stats.max_batch = occupancy_.max();
  stats.exec_clamps = exec_clamps_.load(std::memory_order_relaxed);
  stats.latency_p50_us = latency_.QuantileUs(0.50);
  stats.latency_p95_us = latency_.QuantileUs(0.95);
  stats.latency_p99_us = latency_.QuantileUs(0.99);
  stats.latency_mean_us = latency_.mean_us();
  stats.latency_max_us = latency_.max_us();
  stats.sessions = store_->stats();
  return stats;
}

}  // namespace serve
}  // namespace sim2rec
