#ifndef SIM2REC_SERVE_TRAJECTORY_LOG_H_
#define SIM2REC_SERVE_TRAJECTORY_LOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "obs/metrics.h"

namespace sim2rec {
namespace serve {

/// Serve-side trajectory logging: the "log" half of the
/// continuous-learning loop (the "refresh" half replays segments into
/// data::LoggedDataset, see ReplayTrajectoryLogs). Opt-in and bounded:
/// shards that are handed no sink log nothing, a full ring drops the
/// newest record instead of blocking, and nothing on the Act path ever
/// takes a lock or touches the filesystem.
///
/// Dataflow:
///   Act hot path (per shard, single producer = the shard's batcher
///   thread) --Append--> TrajectorySink SPSC ring
///   --TrajectoryLog::Flush (any one caller thread)--> CRC-framed
///   binary segments on disk (staged tmp+rename, like checkpoint and
///   session-snapshot writes)
///   --ReadTrajectorySegment / ReplayTrajectoryLogs--> LoggedDataset
///   for simulator-ensemble refresh.
///
/// Determinism: Append copies values already computed for the reply —
/// it never draws randomness, never reorders the batch, and never
/// feeds anything back into serving, so replies are bitwise-identical
/// with logging on or off (pinned in tests/serve_test.cc).

struct TrajectoryLogConfig {
  /// Segment output directory (created on first flush).
  std::string dir;
  int obs_dim = 0;
  int action_dim = 0;
  /// Per-shard ring capacity in records; must be a power of two. At
  /// the default, a ring holds 32768 in-flight records per shard
  /// before Append starts dropping (counted, never blocking).
  int ring_capacity = 1 << 15;
  /// Records per finalized segment file. Flush cuts a segment whenever
  /// this many records have accumulated; CloseSegment flushes the
  /// remainder.
  int segment_max_records = 4096;
  /// Metrics destination; null = obs::MetricsRegistry::Global().
  obs::MetricsRegistry* registry = nullptr;
};

/// One shard's lock-free single-producer/single-consumer ring. The
/// producer is the shard's batch-processing thread (InferenceServer
/// runs ProcessBatch on exactly one thread at a time); the consumer is
/// whoever calls TrajectoryLog::Flush. Append is wait-free: a full
/// ring increments the drop counter and returns.
class TrajectorySink {
 public:
  /// Producer side. `obs` has obs_dim entries, `action` action_dim;
  /// `step` is the 0-based serving step within the user's session.
  void Append(uint64_t user_id, uint32_t step, double reward,
              const double* obs, const double* action);

  int shard_id() const { return shard_id_; }
  int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class TrajectoryLog;
  TrajectorySink(int shard_id, int obs_dim, int action_dim, int capacity);

  struct Slot {
    uint64_t user_id = 0;
    uint32_t step = 0;
  };

  const int shard_id_;
  const int obs_dim_;
  const int action_dim_;
  const int capacity_;       // power of two
  const int payload_stride_; // doubles per record: 1 + obs + action
  std::vector<Slot> meta_;
  std::vector<double> payload_;
  // head_ = next write (producer), tail_ = next read (consumer).
  // Indices grow without bound; slot = index & (capacity-1).
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  std::atomic<int64_t> dropped_{0};
};

/// One decoded (s, a, r, step) tuple as read back from a segment.
struct TrajectoryRecord {
  uint64_t user_id = 0;
  uint32_t step = 0;      // 0-based step within the session
  uint32_t shard_id = 0;  // shard that served the request
  double reward = 0.0;    // critic value estimate at serve time
  std::vector<double> obs;
  std::vector<double> action;
};

enum class SegmentStatus {
  kOk = 0,
  kNotFound,
  /// Segment written by a newer format version — intact, upgrade the
  /// reader (mirrors checkpoint LoadStatus semantics).
  kVersionUnsupported,
  /// Bad magic, truncation, or a CRC mismatch on any frame.
  kCorrupt,
};

struct TrajectorySegment {
  int obs_dim = 0;
  int action_dim = 0;
  std::vector<TrajectoryRecord> records;
};

/// Owner of the per-shard sinks and the segment writer. Thread-safe:
/// OpenSink and Flush/CloseSegment take the log mutex; sinks themselves
/// are lock-free (see TrajectorySink).
class TrajectoryLog {
 public:
  explicit TrajectoryLog(const TrajectoryLogConfig& config);
  ~TrajectoryLog();

  TrajectoryLog(const TrajectoryLog&) = delete;
  TrajectoryLog& operator=(const TrajectoryLog&) = delete;

  /// The sink for a shard — stable pointer, created on first call,
  /// same pointer on repeat calls. Hand it to
  /// InferenceServerConfig::trajectory_sink (the ServeRouter does this
  /// per shard when given a TrajectoryLog).
  TrajectorySink* OpenSink(int shard_id);

  /// Drains every sink into the pending buffer and finalizes a segment
  /// file for each full segment_max_records batch. Returns false on
  /// I/O failure (records stay pending; a later flush retries).
  bool Flush();

  /// Flush + write any sub-capacity remainder as a final segment.
  bool CloseSegment();

  struct Stats {
    int64_t appended = 0;  // records accepted into rings
    int64_t dropped = 0;   // records lost to full rings
    int64_t flushed = 0;   // records written into finalized segments
    int64_t segments = 0;  // segment files finalized
  };
  Stats stats() const;

  const TrajectoryLogConfig& config() const { return config_; }

 private:
  bool WriteSegmentLocked(size_t record_count);

  TrajectoryLogConfig config_;
  mutable std::mutex mutex_;
  std::map<int, std::unique_ptr<TrajectorySink>> sinks_;
  /// Drained-but-not-yet-finalized records, encoded on drain.
  std::vector<TrajectoryRecord> pending_;
  int next_segment_ = 0;
  int64_t flushed_ = 0;
  /// Producer-side drop totals already surfaced on metric_drops_.
  int64_t synced_drops_ = 0;
  obs::Counter* metric_appends_ = nullptr;
  obs::Counter* metric_drops_ = nullptr;
  obs::Counter* metric_segments_ = nullptr;
};

/// Decodes one segment file (see PROTOCOL.md "Trajectory-log
/// segments"): validates magic, version, and every frame's CRC before
/// surfacing a single record.
SegmentStatus ReadTrajectorySegment(const std::string& path,
                                    TrajectorySegment* out);

/// Replays every `seg-*.s2tl` under `dir` (filename order — which is
/// finalization order) into `dataset`, closing the loop back to the
/// data layer the simulator ensemble trains from. Per user, records
/// are stitched in step order and split into one UserTrajectory per
/// session (a step-0 record starts a new session). The terminal
/// observation s_T is duplicated from the last served observation —
/// serving never sees the post-action state — and both `feedback` and
/// `rewards` carry the logged critic value estimate. group_id is the
/// serving shard id. Returns false (with *error set) on any corrupt or
/// unreadable segment, or on a dim mismatch with the dataset.
bool ReplayTrajectoryLogs(const std::string& dir,
                          data::LoggedDataset* dataset, std::string* error);

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_TRAJECTORY_LOG_H_
