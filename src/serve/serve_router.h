#ifndef SIM2REC_SERVE_SERVE_ROUTER_H_
#define SIM2REC_SERVE_SERVE_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/context_agent.h"
#include "obs/metrics.h"
#include "serve/hash_ring.h"
#include "serve/inference_server.h"
#include "serve/policy_service.h"

namespace sim2rec {
namespace serve {

class TrajectoryLog;

struct ServeRouterConfig {
  /// Template configuration for every shard's InferenceServer. The
  /// router overrides `registry` (each shard gets its own registry, the
  /// stand-in for a per-process one) and `shard_id`; everything else —
  /// batching, F_exec guard, session caps — applies to each shard
  /// as-is, so `sessions.max_bytes` is a *per-shard* cap.
  InferenceServerConfig shard;
  /// Virtual nodes per shard on the consistent-hash ring.
  int virtual_nodes = HashRing::kDefaultVirtualNodes;
  /// Opt-in serve-side trajectory logging: when non-null, every shard —
  /// including ones the autoscaler adds later — appends its served
  /// (obs, action, value, step) tuples to log->OpenSink(shard_id).
  /// Overrides `shard.trajectory_sink`. The log's obs/action dims must
  /// match the agent's, and the log must outlive the router. Null (the
  /// default) records nothing.
  TrajectoryLog* trajectory_log = nullptr;
};

/// Consistent-hash front end over N InferenceServer shards — the
/// in-process skeleton of a sharded serving deployment (the ROADMAP's
/// cross-process transport item later swaps the direct calls for
/// sockets without touching the routing or handoff logic).
///
///  * Routing: Act(user_id, obs) forwards to the shard owning the user
///    on the ring. Because every shard serves the same checkpointed
///    agent and sessions are user-affine, replies are bitwise-identical
///    whatever the shard count (tested 1 vs 4 in tests/serve_test.cc).
///  * Online resharding: AddShard / RemoveShard wait for in-flight
///    requests to finish (drain), spill exactly the sessions whose
///    owner changed — ~1/N of users, the consistent-hashing guarantee —
///    and replay them into the new owner, recurrent state intact. No
///    session is lost and no user is served by two shards.
///  * Restart persistence: SaveSessions / LoadSessions spill every
///    shard's sessions to one binary snapshot and replay them on the
///    (possibly differently-sized) new topology.
///  * Telemetry: each shard records serve.* metrics into its own
///    registry; MergedMetrics() folds them into one unified view via
///    obs::MergeSnapshots.
///
/// Threading: Act/EndSession are safe from any number of client threads
/// and run concurrently (shared lock); topology changes and snapshot
/// I/O are exclusive and block until in-flight requests complete. The
/// agent must outlive the router.
class ServeRouter : public PolicyService {
 public:
  /// Starts with shards 0 .. initial_shards-1.
  ServeRouter(const core::ContextAgent* agent,
              const ServeRouterConfig& config, int initial_shards);
  ~ServeRouter() override;

  ServeRouter(const ServeRouter&) = delete;
  ServeRouter& operator=(const ServeRouter&) = delete;

  ServeReply Act(uint64_t user_id, const nn::Tensor& obs) override;
  void EndSession(uint64_t user_id) override;

  /// Adds a shard with the given id and migrates the ~1/(N+1) of
  /// resident sessions the ring reassigns to it. False when the id
  /// already exists.
  bool AddShard(int shard_id);
  /// Drains and removes a shard, replaying its sessions into their new
  /// owners. False when the id is absent or it is the last shard.
  bool RemoveShard(int shard_id);

  /// Spills every shard's resident sessions into one snapshot file
  /// (SessionStore::Save format). False on I/O failure.
  bool SaveSessions(const std::string& path) const;
  /// Replays a SaveSessions snapshot onto the current topology: each
  /// session goes to the shard that owns its user *now*, so the saved
  /// and current shard counts are free to differ. Staged — a corrupt or
  /// mismatched snapshot returns false and changes nothing.
  bool LoadSessions(const std::string& path);

  /// Checkpoint hot-swap: atomically replaces the served model on every
  /// shard while keeping every resident session. Takes the exclusive
  /// lock (the same drain barrier resharding uses), so no request is in
  /// flight anywhere during the swap and an Act() never observes a
  /// mixed topology. All-or-nothing: when the new agent is
  /// session-incompatible (different SessionDims or obs_dim — see
  /// InferenceServer::SwapModel) it returns false and every shard keeps
  /// serving the old model. Shards added after a successful swap (the
  /// autoscaler path) are built on the new agent and plan. `agent` must
  /// outlive the router (a CheckpointWatcher owns it); `plan` is the
  /// pre-frozen float32 plan, required under kFloat32 shards and
  /// ignored under kDouble.
  bool SwapModel(const core::ContextAgent* agent,
                 std::shared_ptr<const infer::InferencePlan> plan);

  /// Unified view of all shard registries (obs::MergeSnapshots).
  obs::MetricsSnapshot MergedMetrics() const;
  /// Per-shard serving stats, shard id ascending.
  std::vector<std::pair<int, InferenceServerStats>> ShardStats() const;

  /// The shard currently owning a user (tests, diagnostics).
  int ShardFor(uint64_t user_id) const;
  std::vector<int> shard_ids() const;
  int num_shards() const;
  /// Direct access to one shard (tests; null when absent). The pointer
  /// is invalidated by RemoveShard of that id.
  InferenceServer* shard(int shard_id);

 private:
  struct Shard {
    // Registry is declared before the server so the server (whose hot
    // path records into it) is destroyed first.
    std::unique_ptr<obs::MetricsRegistry> registry;
    std::unique_ptr<InferenceServer> server;
  };

  Shard MakeShard(int shard_id) const;
  /// Moves sessions that `from` no longer owns to their ring owners.
  /// Caller holds the exclusive lock.
  void MigrateFrom(int from_id);

  const core::ContextAgent* agent_;
  ServeRouterConfig config_;

  // Act/EndSession hold this shared for the whole downstream call, so
  // an exclusive acquisition (reshard, snapshot I/O) doubles as the
  // drain barrier: once granted, no request is in flight anywhere.
  mutable std::shared_mutex mutex_;
  HashRing ring_;
  std::map<int, Shard> shards_;
};

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_SERVE_ROUTER_H_
