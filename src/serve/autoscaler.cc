#include "serve/autoscaler.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace sim2rec {
namespace serve {

Autoscaler::Autoscaler(ServeRouter* router, const AutoscalerConfig& config)
    : router_(router), config_(config) {
  S2R_CHECK(router != nullptr);
  S2R_CHECK(config.min_shards >= 1);
  S2R_CHECK(config.max_shards >= config.min_shards);
  S2R_CHECK(config.scale_out_demand > config.scale_in_demand);
  S2R_CHECK(config.scale_out_p99_us >= 0.0);
  S2R_CHECK(config.scale_out_queue_depth >= 0.0);
  S2R_CHECK(config.breach_polls >= 1);
  S2R_CHECK(config.cooldown_polls >= 0);
}

Autoscaler::~Autoscaler() { Stop(); }

Autoscaler::Action Autoscaler::Poll() {
  std::lock_guard<std::mutex> lock(mutex_);
  polls_.fetch_add(1, std::memory_order_relaxed);

  const auto shard_stats = config_.stats_source
                               ? config_.stats_source()
                               : router_->ShardStats();
  const int shards = static_cast<int>(shard_stats.size());
  int64_t total_requests = 0;
  int64_t total_queued = 0;
  double max_p99_us = 0.0;
  for (const auto& [id, stats] : shard_stats) {
    (void)id;
    total_requests += stats.requests;
    total_queued += stats.queue_depth;
    max_p99_us = std::max(max_p99_us, stats.latency_p99_us);
  }
  const double queue_depth =
      shards > 0 ? static_cast<double>(total_queued) / shards : 0.0;
  last_p99_us_.store(max_p99_us, std::memory_order_relaxed);
  last_queue_depth_.store(queue_depth, std::memory_order_relaxed);

  // First poll only establishes the request-counter baseline: a delta
  // against zero would read the router's whole history as one
  // interval's demand.
  if (!have_baseline_) {
    have_baseline_ = true;
    last_requests_ = total_requests;
    last_demand_.store(0.0, std::memory_order_relaxed);
    return Action::kNone;
  }

  const double demand =
      shards > 0
          ? static_cast<double>(total_requests - last_requests_) / shards
          : 0.0;
  last_requests_ = total_requests;
  last_demand_.store(demand, std::memory_order_relaxed);

  const bool overload =
      demand > config_.scale_out_demand ||
      (config_.scale_out_p99_us > 0.0 &&
       max_p99_us > config_.scale_out_p99_us) ||
      (config_.scale_out_queue_depth > 0.0 &&
       queue_depth > config_.scale_out_queue_depth);
  const bool underload = !overload && demand < config_.scale_in_demand;
  out_streak_ = overload ? out_streak_ + 1 : 0;
  in_streak_ = underload ? in_streak_ + 1 : 0;

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return Action::kNone;
  }

  if (out_streak_ >= config_.breach_polls && shards < config_.max_shards) {
    const auto ids = router_->shard_ids();
    const int new_id =
        ids.empty() ? 0 : *std::max_element(ids.begin(), ids.end()) + 1;
    if (router_->AddShard(new_id)) {
      scale_outs_.fetch_add(1, std::memory_order_relaxed);
      out_streak_ = 0;
      in_streak_ = 0;
      cooldown_left_ = config_.cooldown_polls;
      return Action::kScaleOut;
    }
  }

  if (in_streak_ >= config_.breach_polls && shards > config_.min_shards) {
    const auto ids = router_->shard_ids();
    if (!ids.empty() &&
        router_->RemoveShard(*std::max_element(ids.begin(), ids.end()))) {
      scale_ins_.fetch_add(1, std::memory_order_relaxed);
      out_streak_ = 0;
      in_streak_ = 0;
      cooldown_left_ = config_.cooldown_polls;
      return Action::kScaleIn;
    }
  }
  return Action::kNone;
}

void Autoscaler::Start(int poll_interval_ms) {
  S2R_CHECK(poll_interval_ms >= 1);
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (!stop_) return;  // already running
    stop_ = false;
  }
  poller_ = std::thread([this, poll_interval_ms] {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    while (!stop_) {
      if (stop_cv_.wait_for(lock,
                            std::chrono::milliseconds(poll_interval_ms),
                            [this] { return stop_; })) {
        break;
      }
      lock.unlock();
      Poll();
      lock.lock();
    }
  });
}

void Autoscaler::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stop_) {
      if (poller_.joinable()) poller_.join();
      return;
    }
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
}

AutoscalerStats Autoscaler::stats() const {
  AutoscalerStats stats;
  stats.polls = polls_.load(std::memory_order_relaxed);
  stats.scale_outs = scale_outs_.load(std::memory_order_relaxed);
  stats.scale_ins = scale_ins_.load(std::memory_order_relaxed);
  stats.last_demand = last_demand_.load(std::memory_order_relaxed);
  stats.last_p99_us = last_p99_us_.load(std::memory_order_relaxed);
  stats.last_queue_depth =
      last_queue_depth_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace serve
}  // namespace sim2rec
