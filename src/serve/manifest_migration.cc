#include "serve/manifest_migration.h"

namespace sim2rec {
namespace serve {
namespace {

/// One renamed key: `old_key` was the legal spelling through
/// `last_version` (inclusive); newer manifests use `new_key`.
struct KeyRename {
  int last_version;
  const char* old_key;
  const char* new_key;
};

/// One retyped key: through `last_version` the key held a 0/1 integer;
/// newer manifests spell it `false`/`true`.
struct BoolRetype {
  int last_version;
  const char* key;
};

constexpr KeyRename kRenames[] = {
    {2, "lstm_hidden", "extractor_hidden"},
};

constexpr BoolRetype kBoolRetypes[] = {
    {2, "use_extractor"},
    {2, "normalize_observations"},
    {2, "has_sadae"},
};

}  // namespace

bool MigrateManifest(int version, ManifestMap* manifest,
                     ManifestMigration* migration) {
  migration->applied = 0;
  migration->notes.clear();

  for (const KeyRename& rename : kRenames) {
    if (version > rename.last_version) continue;
    auto old_it = manifest->find(rename.old_key);
    if (old_it == manifest->end()) continue;  // loader reports the miss
    if (manifest->count(rename.new_key) != 0) {
      // Both spellings present: the manifest was hand-edited or
      // corrupted; refusing beats guessing which one is authoritative.
      return false;
    }
    (*manifest)[rename.new_key] = std::move(old_it->second);
    manifest->erase(old_it);
    ++migration->applied;
    migration->notes.push_back(std::string("renamed ") + rename.old_key +
                               " -> " + rename.new_key);
  }

  for (const BoolRetype& retype : kBoolRetypes) {
    if (version > retype.last_version) continue;
    auto it = manifest->find(retype.key);
    if (it == manifest->end()) continue;
    if (it->second.size() != 1) return false;
    std::string& value = it->second[0];
    if (value == "0") {
      value = "false";
    } else if (value == "1") {
      value = "true";
    } else {
      // A v<=2 flag must be exactly 0 or 1; anything else (including an
      // anachronistic true/false) means the version line lies.
      return false;
    }
    ++migration->applied;
    migration->notes.push_back(std::string("retyped ") + retype.key +
                               " to boolean (" + value + ")");
  }
  return true;
}

}  // namespace serve
}  // namespace sim2rec
