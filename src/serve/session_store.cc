#include "serve/session_store.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace sim2rec {
namespace serve {
namespace {

/// Fixed per-session container overhead charged against the byte cap:
/// hash-map node, LRU list node, tensor headers. An estimate — the cap
/// is a sizing knob, not an allocator contract.
constexpr size_t kSessionOverheadBytes = 160;

}  // namespace

SessionStore::SessionStore(const SessionDims& dims,
                           const SessionStoreConfig& config)
    : dims_(dims), config_(config) {
  S2R_CHECK(dims.action_dim > 0);
  S2R_CHECK(dims.hidden >= 0 && dims.latent_dim >= 0);
  S2R_CHECK(config.max_bytes > 0);
  S2R_CHECK(config.ttl_ms >= 0);
  max_sessions_ = std::max<size_t>(1, config.max_bytes / BytesPerSession());
}

size_t SessionStore::BytesPerSession() const {
  const size_t doubles =
      static_cast<size_t>(dims_.hidden) * (dims_.has_cell ? 2 : 1) +
      static_cast<size_t>(dims_.action_dim) +
      static_cast<size_t>(dims_.latent_dim);
  return doubles * sizeof(double) + kSessionOverheadBytes;
}

Session SessionStore::FreshSession() const {
  Session session;
  if (dims_.hidden > 0) {
    session.h = nn::Tensor::Zeros(1, dims_.hidden);
    if (dims_.has_cell) session.c = nn::Tensor::Zeros(1, dims_.hidden);
  }
  session.prev_action = nn::Tensor::Zeros(1, dims_.action_dim);
  if (dims_.latent_dim > 0) {
    session.v = nn::Tensor::Zeros(1, dims_.latent_dim);
  }
  return session;
}

Session SessionStore::Acquire(uint64_t user_id, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(user_id);
  if (it != index_.end()) {
    if (config_.ttl_ms > 0 &&
        now_ms - it->second->second.last_used_ms > config_.ttl_ms) {
      // Expired: the user re-enters with fresh zeroed recurrent state.
      lru_.erase(it->second);
      index_.erase(it);
      ++stats_.expirations;
      ++stats_.misses;
      S2R_COUNT("serve.session_expirations", 1);
      return FreshSession();
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second.last_used_ms = now_ms;
    ++stats_.hits;
    return it->second->second;
  }
  ++stats_.misses;
  return FreshSession();
}

void SessionStore::Commit(uint64_t user_id, Session session,
                          int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  session.last_used_ms = now_ms;
  auto it = index_.find(user_id);
  if (it != index_.end()) {
    it->second->second = std::move(session);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(user_id, std::move(session));
    index_[user_id] = lru_.begin();
  }
  while (lru_.size() > max_sessions_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    S2R_COUNT("serve.session_evictions", 1);
  }
}

bool SessionStore::Erase(uint64_t user_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(user_id);
  if (it == index_.end()) return false;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

size_t SessionStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

SessionStore::Stats SessionStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace serve
}  // namespace sim2rec
