#include "serve/session_store.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "nn/serialize.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace sim2rec {
namespace serve {
namespace {

/// Fixed per-session container overhead charged against the byte cap:
/// hash-map node, LRU list node, tensor headers. An estimate — the cap
/// is a sizing knob, not an allocator contract.
constexpr size_t kSessionOverheadBytes = 160;

// Session-snapshot container: magic, format version, payload CRC32 and
// length, then the payload (dims header + session records). All
// integers little-endian via raw writes; doubles ride in
// nn::WriteTensor, so the recurrent-state round trip is bit-exact.
constexpr char kSnapshotMagic[4] = {'S', '2', 'S', 'S'};
constexpr uint32_t kSnapshotVersion = 1;
// A snapshot claiming more sessions than this is treated as corrupt
// before any allocation happens (a damaged count field must not
// trigger a multi-gigabyte reserve).
constexpr uint64_t kMaxSnapshotSessions = uint64_t{1} << 32;

template <typename T>
void WriteScalar(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadScalar(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.gcount() == static_cast<std::streamsize>(sizeof(*value));
}

}  // namespace

SessionStore::SessionStore(const SessionDims& dims,
                           const SessionStoreConfig& config)
    : dims_(dims), config_(config) {
  S2R_CHECK(dims.action_dim > 0);
  S2R_CHECK(dims.hidden >= 0 && dims.latent_dim >= 0);
  S2R_CHECK(config.max_bytes > 0);
  S2R_CHECK(config.ttl_ms >= 0);
  max_sessions_ = std::max<size_t>(1, config.max_bytes / BytesPerSession());
}

size_t SessionStore::BytesPerSession() const {
  const size_t doubles =
      static_cast<size_t>(dims_.hidden) * (dims_.has_cell ? 2 : 1) +
      static_cast<size_t>(dims_.action_dim) +
      static_cast<size_t>(dims_.latent_dim);
  return doubles * sizeof(double) + kSessionOverheadBytes;
}

Session SessionStore::FreshSession() const {
  Session session;
  if (dims_.hidden > 0) {
    session.h = nn::Tensor::Zeros(1, dims_.hidden);
    if (dims_.has_cell) session.c = nn::Tensor::Zeros(1, dims_.hidden);
  }
  session.prev_action = nn::Tensor::Zeros(1, dims_.action_dim);
  if (dims_.latent_dim > 0) {
    session.v = nn::Tensor::Zeros(1, dims_.latent_dim);
  }
  return session;
}

Session SessionStore::Acquire(uint64_t user_id, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(user_id);
  if (it != index_.end()) {
    if (config_.ttl_ms > 0 &&
        now_ms - it->second->second.last_used_ms > config_.ttl_ms) {
      // Expired: the user re-enters with fresh zeroed recurrent state.
      lru_.erase(it->second);
      index_.erase(it);
      ++stats_.expirations;
      ++stats_.misses;
      S2R_COUNT("serve.session_expirations", 1);
      return FreshSession();
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second.last_used_ms = now_ms;
    ++stats_.hits;
    return it->second->second;
  }
  ++stats_.misses;
  return FreshSession();
}

void SessionStore::Commit(uint64_t user_id, Session session,
                          int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  session.last_used_ms = now_ms;
  auto it = index_.find(user_id);
  if (it != index_.end()) {
    it->second->second = std::move(session);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(user_id, std::move(session));
    index_[user_id] = lru_.begin();
  }
  while (lru_.size() > max_sessions_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    S2R_COUNT("serve.session_evictions", 1);
  }
}

bool SessionStore::Erase(uint64_t user_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(user_id);
  if (it == index_.end()) return false;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

std::vector<SessionStore::SessionRecord> SessionStore::ExportSessions()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionRecord> records;
  records.reserve(lru_.size());
  for (const auto& entry : lru_) records.push_back(entry);
  return records;
}

std::vector<SessionStore::SessionRecord> SessionStore::ExtractIf(
    const std::function<bool(uint64_t)>& pred) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionRecord> extracted;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (pred(it->first)) {
      extracted.push_back(std::move(*it));
      index_.erase(extracted.back().first);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  return extracted;
}

void SessionStore::Restore(uint64_t user_id, Session session) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(user_id);
  if (it != index_.end()) {
    // A session arriving via handoff supersedes whatever grew locally.
    it->second->second = std::move(session);
    lru_.splice(lru_.end(), lru_, it->second);
  } else {
    lru_.emplace_back(user_id, std::move(session));
    index_[user_id] = std::prev(lru_.end());
  }
  while (lru_.size() > max_sessions_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    S2R_COUNT("serve.session_evictions", 1);
  }
}

bool SessionStore::Save(const std::string& path) const {
  std::ostringstream payload(std::ios::binary);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    WriteScalar<int32_t>(payload, dims_.hidden);
    WriteScalar<uint8_t>(payload, dims_.has_cell ? 1 : 0);
    WriteScalar<int32_t>(payload, dims_.action_dim);
    WriteScalar<int32_t>(payload, dims_.latent_dim);
    WriteScalar<uint64_t>(payload, lru_.size());
    for (const auto& [user_id, session] : lru_) {  // MRU first
      WriteScalar<uint64_t>(payload, user_id);
      WriteScalar<int64_t>(payload, session.last_used_ms);
      WriteScalar<int64_t>(payload, session.steps);
      nn::WriteTensor(payload, session.h);
      nn::WriteTensor(payload, session.c);
      nn::WriteTensor(payload, session.prev_action);
      nn::WriteTensor(payload, session.v);
    }
  }
  const std::string bytes = payload.str();

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
    WriteScalar<uint32_t>(out, kSnapshotVersion);
    WriteScalar<uint32_t>(out, Crc32(bytes));
    WriteScalar<uint64_t>(out, bytes.size());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool SessionStore::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      !std::equal(magic, magic + 4, kSnapshotMagic)) {
    return false;
  }
  uint32_t version = 0, crc = 0;
  uint64_t payload_size = 0;
  if (!ReadScalar(in, &version) || version != kSnapshotVersion) return false;
  if (!ReadScalar(in, &crc) || !ReadScalar(in, &payload_size)) return false;
  // Bounded by the file's actual remaining bytes before allocating.
  const std::streampos payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos file_end = in.tellg();
  if (payload_start < 0 || file_end < payload_start ||
      static_cast<uint64_t>(file_end - payload_start) != payload_size) {
    return false;  // truncated or padded
  }
  in.seekg(payload_start);
  std::string bytes(payload_size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(payload_size));
  if (in.gcount() != static_cast<std::streamsize>(payload_size)) return false;
  if (Crc32(bytes) != crc) return false;

  // Stage: parse everything before touching the store.
  std::istringstream payload(bytes, std::ios::binary);
  int32_t hidden = 0, action_dim = 0, latent_dim = 0;
  uint8_t has_cell = 0;
  uint64_t count = 0;
  if (!ReadScalar(payload, &hidden) || !ReadScalar(payload, &has_cell) ||
      !ReadScalar(payload, &action_dim) ||
      !ReadScalar(payload, &latent_dim) || !ReadScalar(payload, &count)) {
    return false;
  }
  if (hidden != dims_.hidden || (has_cell != 0) != dims_.has_cell ||
      action_dim != dims_.action_dim || latent_dim != dims_.latent_dim) {
    S2R_LOG_WARN("session snapshot '%s' has mismatched dims", path.c_str());
    return false;
  }
  if (count > kMaxSnapshotSessions) return false;
  std::vector<SessionRecord> records;
  records.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    SessionRecord record;
    Session& session = record.second;
    if (!ReadScalar(payload, &record.first) ||
        !ReadScalar(payload, &session.last_used_ms) ||
        !ReadScalar(payload, &session.steps) ||
        !nn::ReadTensor(payload, &session.h) ||
        !nn::ReadTensor(payload, &session.c) ||
        !nn::ReadTensor(payload, &session.prev_action) ||
        !nn::ReadTensor(payload, &session.v)) {
      return false;
    }
    records.push_back(std::move(record));
  }

  // Commit: snapshot order is MRU first, so appending preserves it.
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  for (auto& record : records) {
    if (lru_.size() >= max_sessions_) break;  // keep the hottest
    lru_.push_back(std::move(record));
    index_[lru_.back().first] = std::prev(lru_.end());
  }
  return true;
}

size_t SessionStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

SessionStore::Stats SessionStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace serve
}  // namespace sim2rec
