#ifndef SIM2REC_SERVE_AUTOSCALER_H_
#define SIM2REC_SERVE_AUTOSCALER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "serve/serve_router.h"

namespace sim2rec {
namespace serve {

struct AutoscalerConfig {
  /// Topology bounds. RemoveShard refuses to drop the last shard, but
  /// the controller additionally never crosses these.
  int min_shards = 1;
  int max_shards = 8;

  /// Demand signal: requests per shard per poll interval (delta of the
  /// summed shard request counters between polls, divided by the shard
  /// count). Above scale_out_demand is an overload breach; below
  /// scale_in_demand is an underload breach. The band between them is
  /// the hysteresis dead zone — demand bouncing inside it never moves
  /// the topology.
  double scale_out_demand = 512.0;
  double scale_in_demand = 64.0;

  /// Optional latency trigger: any shard's p99 Act latency above this
  /// also counts as an overload breach. 0 disables it (the default —
  /// per-shard histograms are cumulative, so demand is the cleaner
  /// signal for deterministic tests; latency catches pathologies demand
  /// misses, like one hot shard at modest aggregate rate).
  double scale_out_p99_us = 0.0;

  /// Backlog trigger: mean instantaneous queue depth per shard (the
  /// serve.queue_depth gauge each shard exports) above this counts as an
  /// overload breach, alongside demand. 0 disables it (default). Demand
  /// is requests *served* per interval, so a saturated shard whose
  /// throughput has plateaued reads as flat demand while its queue
  /// grows — this knob catches exactly that case. Subject to the same
  /// breach_polls streak and cooldown hysteresis as the other signals.
  double scale_out_queue_depth = 0.0;

  /// A breach must persist for this many *consecutive* polls before the
  /// controller acts — the other half of the hysteresis.
  int breach_polls = 2;
  /// Polls to sit out after any topology change, letting the reshard's
  /// session migration and the demand baseline settle before judging
  /// the new topology.
  int cooldown_polls = 3;

  /// Where Poll() samples per-shard stats. Null (default) reads the
  /// live router via ShardStats(). Tests inject a synthetic source so
  /// transient signals like queue depth — practically always 0 by the
  /// time a deterministic test polls — can be exercised; the controller
  /// still acts on the real router.
  std::function<std::vector<std::pair<int, InferenceServerStats>>()>
      stats_source;
};

struct AutoscalerStats {
  int64_t polls = 0;
  int64_t scale_outs = 0;
  int64_t scale_ins = 0;
  double last_demand = 0.0;   // requests / shard, most recent poll
  double last_p99_us = 0.0;   // max over shards, most recent poll
  double last_queue_depth = 0.0;  // mean queued / shard, most recent poll
};

/// Hysteresis controller closing the loop the OPERATIONS runbook left
/// manual: it polls the router's per-shard stats and calls AddShard /
/// RemoveShard itself. Scale-out adds a shard with id max(ids)+1;
/// scale-in removes the highest id — ids stay dense-ish and the ring
/// reassigns ~1/N of users either way, sessions migrating intact
/// (ServeRouter's reshard guarantee, which is what makes autoscaling
/// safe to run against live traffic).
///
/// Poll() is the whole control step and is safe to drive manually
/// (tests, a load driver's tick hook) or from the optional background
/// thread Start() spawns. Calls are serialized; stats() is lock-free.
class Autoscaler {
 public:
  enum class Action { kNone, kScaleOut, kScaleIn };

  Autoscaler(ServeRouter* router, const AutoscalerConfig& config);
  ~Autoscaler();

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  /// One control step: sample demand, update breach streaks, act when a
  /// streak survives breach_polls and no cooldown is pending. Returns
  /// what it did.
  Action Poll();

  /// Spawns a thread calling Poll() every poll_interval_ms. Stop() (or
  /// the destructor) joins it. Start is idempotent while running.
  void Start(int poll_interval_ms);
  void Stop();

  AutoscalerStats stats() const;

 private:
  ServeRouter* router_;
  AutoscalerConfig config_;

  std::mutex mutex_;  // serializes Poll (manual vs background)
  int64_t last_requests_ = 0;
  bool have_baseline_ = false;
  int out_streak_ = 0;
  int in_streak_ = 0;
  int cooldown_left_ = 0;

  std::atomic<int64_t> polls_{0};
  std::atomic<int64_t> scale_outs_{0};
  std::atomic<int64_t> scale_ins_{0};
  std::atomic<double> last_demand_{0.0};
  std::atomic<double> last_p99_us_{0.0};
  std::atomic<double> last_queue_depth_{0.0};

  std::thread poller_;
  std::mutex stop_mutex_;             // pairs with stop_cv_ for Stop()
  std::condition_variable stop_cv_;   // wakes the poller early on Stop
  bool stop_ = true;
};

}  // namespace serve
}  // namespace sim2rec

#endif  // SIM2REC_SERVE_AUTOSCALER_H_
