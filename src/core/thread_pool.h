#ifndef SIM2REC_CORE_THREAD_POOL_H_
#define SIM2REC_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sim2rec {
namespace core {

/// Work-stealing thread pool for deterministic data parallelism.
///
/// The pool executes index spaces ([0, n) loops) rather than free-form
/// task graphs: `ParallelFor(n, fn)` splits the indices into one
/// contiguous range per participant (the calling thread plus every
/// worker); each participant drains its own range first and then steals
/// single iterations from the ranges of busy participants. Because every
/// `fn(i)` writes only to slot i of whatever output it fills, results
/// are bit-identical for any thread count — scheduling only changes
/// *when* an iteration runs, never what it computes. This is the
/// property the parallel rollout engine and the ensemble-uncertainty
/// fan-out rely on (see DESIGN.md, "Threading model & determinism").
///
/// A `ParallelFor` issued from inside another `ParallelFor` (on any
/// participant thread) runs serially on the issuing thread: the outer
/// loop already owns the pool, and the serial fallback keeps nesting
/// deadlock-free without a scheduler.
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread, so ThreadPool(4) spawns 3
  /// workers and runs 4-wide. Values < 1 are clamped to 1 (no workers,
  /// every ParallelFor inline).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participants (workers + calling thread), >= 1.
  int size() const { return num_participants_; }

  /// Runs fn(i) for every i in [0, n), blocking until all complete.
  /// The first exception thrown by fn is rethrown here (remaining
  /// iterations are skipped). Only one external thread may drive a
  /// given pool at a time; nested calls from inside fn are safe (they
  /// run inline).
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Thread count from the SIM2REC_THREADS env var when set (clamped to
  /// [1, 256]), otherwise std::thread::hardware_concurrency().
  static int DefaultThreads();

  /// Process-wide shared pool sized by DefaultThreads() on first use.
  static ThreadPool& Global();

 private:
  /// Per-participant iteration range; `next` advances past `end` when
  /// the range is exhausted (harmless — claims simply fail).
  struct Range {
    std::atomic<int> next{0};
    int end = 0;
  };
  struct Batch {
    const std::function<void(int)>* fn = nullptr;
    int n = 0;
    std::vector<std::unique_ptr<Range>> ranges;
    std::atomic<bool> cancelled{false};
    std::exception_ptr error;  // guarded by error_mutex
    std::mutex error_mutex;
  };

  void WorkerLoop(int participant);
  void RunParticipant(Batch* batch, int participant);

  int num_participants_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for a new batch
  std::condition_variable done_cv_;  // caller waits for workers to drain
  Batch* batch_ = nullptr;           // guarded by mutex_
  uint64_t generation_ = 0;          // guarded by mutex_
  int workers_active_ = 0;           // guarded by mutex_
  bool shutdown_ = false;            // guarded by mutex_
};

}  // namespace core
}  // namespace sim2rec

#endif  // SIM2REC_CORE_THREAD_POOL_H_
