#ifndef SIM2REC_CORE_TRAINING_OBSERVER_H_
#define SIM2REC_CORE_TRAINING_OBSERVER_H_

#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

namespace sim2rec {
namespace core {

/// Record of one training iteration.
struct IterationLog {
  int iteration = 0;
  double train_return = 0.0;
  double eval_return = std::numeric_limits<double>::quiet_NaN();
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  double approx_kl = 0.0;
  double sadae_loss = std::numeric_limits<double>::quiet_NaN();

  bool has_eval() const { return !std::isnan(eval_return); }
};

/// Unified training-hook interface: everything a pipeline wants to do
/// while ZeroShotTrainer::Train() runs (stream metrics, export serving
/// checkpoints, drive dashboards) goes through one observer instead of
/// a per-concern setter. Install with ZeroShotTrainer::set_observer;
/// compose several with CompositeObserver. The observer must outlive
/// the Train() call. Methods default to no-ops so an observer overrides
/// only what it cares about.
class TrainingObserver {
 public:
  virtual ~TrainingObserver() = default;

  /// Called with each iteration's log entry right after it is recorded
  /// (metrics streaming — a killed run keeps its partial history).
  virtual void OnIteration(const IterationLog& log) { (void)log; }

  /// Called with the 0-based iteration after that iteration's updates,
  /// every TrainLoopConfig::checkpoint_every iterations and always
  /// after the last one (serving-bundle export).
  virtual void OnCheckpoint(int iteration) { (void)iteration; }
};

/// Fans one observer slot out to many, in registration order. Accepts
/// both borrowed observers (caller keeps ownership and lifetime) and
/// owned ones (the composite deletes them), so pipelines can mix
/// stack-allocated exporters with ad-hoc adapters.
class CompositeObserver : public TrainingObserver {
 public:
  /// Borrow: `observer` must outlive the composite.
  void Add(TrainingObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }
  /// Own: the composite keeps `observer` alive and deletes it.
  void AddOwned(std::unique_ptr<TrainingObserver> observer) {
    if (observer == nullptr) return;
    observers_.push_back(observer.get());
    owned_.push_back(std::move(observer));
  }
  bool empty() const { return observers_.empty(); }

  void OnIteration(const IterationLog& log) override {
    for (TrainingObserver* observer : observers_) observer->OnIteration(log);
  }
  void OnCheckpoint(int iteration) override {
    for (TrainingObserver* observer : observers_) {
      observer->OnCheckpoint(iteration);
    }
  }

 private:
  std::vector<TrainingObserver*> observers_;
  std::vector<std::unique_ptr<TrainingObserver>> owned_;
};

}  // namespace core
}  // namespace sim2rec

#endif  // SIM2REC_CORE_TRAINING_OBSERVER_H_
