#ifndef SIM2REC_CORE_SIM2REC_TRAINER_H_
#define SIM2REC_CORE_SIM2REC_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/context_agent.h"
#include "core/thread_pool.h"
#include "core/training_observer.h"
#include "rl/parallel_rollout.h"
#include "rl/ppo.h"
#include "sadae/sadae_trainer.h"

namespace sim2rec {
namespace core {

/// Training-loop configuration (Algorithm 1).
struct TrainLoopConfig {
  int iterations = 150;
  /// Rollout length per iteration; for simulator-backed envs this equals
  /// the truncated horizon T_c.
  int rollout_steps = 1 << 30;  // clipped to the env horizon
  rl::PpoConfig ppo;

  /// Joint SADAE ELBO updates per iteration (Algorithm 1 line 10,
  /// "update kappa via Eq. 8"); 0 disables.
  int sadae_steps_per_iteration = 1;
  int sadae_sets_per_step = 4;

  /// Evaluate every `eval_every` iterations (0 disables).
  int eval_every = 10;
  int eval_episodes = 2;

  /// Fire the observer's OnCheckpoint (see set_observer) every this
  /// many iterations in addition to the final one; 0 = final only.
  int checkpoint_every = 0;

  /// Linear learning-rate decay to `final_learning_rate` over the run
  /// (the paper anneals 1e-4 -> 1e-6). Negative disables decay.
  double final_learning_rate = -1.0;

  /// Parallel rollout engine: thread count for the
  /// rl::ParallelRolloutCollector. 0 keeps the legacy serial path
  /// (single env per iteration, shared rng — the pre-engine numerics).
  /// Any value >= 1 switches to the engine; because shard streams are
  /// counter-based substreams, results are bit-identical across
  /// parallelism = 1, 4, 8, ... for a fixed seed. -1 uses
  /// core::ThreadPool::DefaultThreads() (the SIM2REC_THREADS env var).
  int parallelism = 0;
  /// Environments rolled out per iteration when the engine is active;
  /// drawn without replacement from the training set (shards must not
  /// alias), clamped to the number of training envs.
  int rollout_shards = 1;

  uint64_t seed = 0;
};

// IterationLog lives in core/training_observer.h (included above) next
// to the observer interface that consumes it.

/// The Sim2Rec training loop (paper Algorithm 1), generic over the
/// simulator set:
///
///   for each iteration:
///     sample an environment from the simulator set (omega ~ p(Omega'),
///       group g ~ p(g) — both encoded as entries of `training_envs`,
///       with `on_env_selected` re-drawing omega for swappable envs);
///     collect a truncated rollout (tau ~ p(tau | pi, phi, P_{M,tau^r}));
///     PPO update of pi, phi, f, and kappa through Eq. 4;
///     SADAE ELBO update of kappa, theta through Eq. 8;
///     periodically evaluate on the held-out target environment.
///
/// The uncertainty penalty, F_trend and F_exec live inside the
/// simulator-backed environments / dataset preparation, so the loop is
/// identical for the LTS and DPR experiments.
class ZeroShotTrainer {
 public:
  /// `agent` and every env must outlive the trainer. `sadae_trainer` and
  /// `sadae_sets` may be null/empty (baselines without SADAE).
  ZeroShotTrainer(rl::Agent* agent,
                  std::vector<envs::GroupBatchEnv*> training_envs,
                  const TrainLoopConfig& config,
                  sadae::SadaeTrainer* sadae_trainer = nullptr,
                  const std::vector<nn::Tensor>* sadae_sets = nullptr);

  /// Hook invoked after an environment is drawn for an iteration; used
  /// by the DPR experiments to re-draw the active simulator omega.
  void set_on_env_selected(
      std::function<void(envs::GroupBatchEnv*, Rng&)> hook) {
    on_env_selected_ = std::move(hook);
  }

  /// Deployment-performance probe on the target environment(s).
  void set_evaluator(std::function<double(rl::Agent&, Rng&)> evaluator) {
    evaluator_ = std::move(evaluator);
  }

  /// Installs the training observer: OnIteration fires with each log
  /// entry right after it is recorded; OnCheckpoint fires with the
  /// 0-based iteration every `checkpoint_every` iterations and always
  /// after the last one. The trainer stays agnostic of what observers
  /// do (metrics streaming, serve::SaveCheckpoint export, ...); compose
  /// several with core::CompositeObserver. The observer must outlive
  /// Train(); pass nullptr to clear.
  void set_observer(TrainingObserver* observer) { observer_ = observer; }

  /// Runs the loop; returns one log entry per iteration.
  std::vector<IterationLog> Train();

  rl::PpoTrainer& ppo() { return *ppo_; }

 private:
  rl::Agent* agent_;
  std::vector<envs::GroupBatchEnv*> training_envs_;
  TrainLoopConfig config_;
  sadae::SadaeTrainer* sadae_trainer_;
  const std::vector<nn::Tensor>* sadae_sets_;
  std::unique_ptr<rl::PpoTrainer> ppo_;
  std::unique_ptr<ThreadPool> pool_;  // engine pool (parallelism != 0)
  std::function<void(envs::GroupBatchEnv*, Rng&)> on_env_selected_;
  std::function<double(rl::Agent&, Rng&)> evaluator_;
  TrainingObserver* observer_ = nullptr;
};

}  // namespace core
}  // namespace sim2rec

#endif  // SIM2REC_CORE_SIM2REC_TRAINER_H_
