#include "core/sim2rec_trainer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sim2rec {
namespace core {

ZeroShotTrainer::ZeroShotTrainer(
    rl::Agent* agent, std::vector<envs::GroupBatchEnv*> training_envs,
    const TrainLoopConfig& config, sadae::SadaeTrainer* sadae_trainer,
    const std::vector<nn::Tensor>* sadae_sets)
    : agent_(agent), training_envs_(std::move(training_envs)),
      config_(config), sadae_trainer_(sadae_trainer),
      sadae_sets_(sadae_sets) {
  S2R_CHECK(agent != nullptr);
  S2R_CHECK(!training_envs_.empty());
  ppo_ = std::make_unique<rl::PpoTrainer>(agent, config.ppo);
  if (config_.parallelism != 0) {
    const int threads = config_.parallelism > 0
                            ? config_.parallelism
                            : ThreadPool::DefaultThreads();
    pool_ = std::make_unique<ThreadPool>(threads);
    S2R_CHECK(config_.rollout_shards >= 1);
  }
}

std::vector<IterationLog> ZeroShotTrainer::Train() {
  Rng rng(config_.seed);
  std::vector<IterationLog> logs;
  logs.reserve(config_.iterations);

  const double lr0 = config_.ppo.learning_rate;
  for (int iter = 0; iter < config_.iterations; ++iter) {
    S2R_TRACE_SPAN("train/iteration");
    if (config_.final_learning_rate >= 0.0 && config_.iterations > 1) {
      const double frac =
          static_cast<double>(iter) / (config_.iterations - 1);
      ppo_->set_learning_rate(
          lr0 + frac * (config_.final_learning_rate - lr0));
    }

    rl::Rollout rollout;
    if (pool_ != nullptr) {
      // Parallel engine: draw `rollout_shards` distinct envs (still
      // Algorithm 1 lines 4-5, batched) and collect them concurrently.
      // The shard draw uses the serial rng, so the decomposition is
      // identical for every thread count.
      const int num_envs = static_cast<int>(training_envs_.size());
      const int num_shards = std::min(config_.rollout_shards, num_envs);
      const std::vector<int> order = rng.Permutation(num_envs);
      std::vector<rl::RolloutShard> shards(num_shards);
      for (int k = 0; k < num_shards; ++k) {
        shards[k].env = training_envs_[order[k]];
        shards[k].on_reset = on_env_selected_;
      }
      rl::ParallelRolloutCollector collector(pool_.get());
      rollout = collector.Collect(shards, *agent_, config_.rollout_steps,
                                  rng);
    } else {
      // Algorithm 1 lines 4-5: draw the simulator and the group.
      envs::GroupBatchEnv* env = training_envs_[rng.UniformInt(
          static_cast<int>(training_envs_.size()))];
      if (on_env_selected_) on_env_selected_(env, rng);

      // Lines 6-9: truncated rollout (the env applies the uncertainty
      // penalty and F_exec internally).
      rollout = rl::CollectRollout(*env, *agent_, config_.rollout_steps,
                                   rng);
    }

    // Line 10, Eq. 4: PPO update of policy, extractor, f, kappa.
    rl::PpoTrainer::UpdateStats stats;
    if (rollout.num_steps > 0) stats = ppo_->Update(&rollout);

    IterationLog log;
    log.iteration = iter;
    log.train_return = stats.mean_return;
    log.policy_loss = stats.policy_loss;
    log.value_loss = stats.value_loss;
    log.entropy = stats.entropy;
    log.approx_kl = stats.approx_kl;

    // Line 10, Eq. 8: SADAE ELBO update of kappa, theta.
    if (sadae_trainer_ != nullptr && sadae_sets_ != nullptr &&
        !sadae_sets_->empty() && config_.sadae_steps_per_iteration > 0) {
      double sadae_loss = 0.0;
      for (int s = 0; s < config_.sadae_steps_per_iteration; ++s) {
        std::vector<int> batch;
        for (int k = 0; k < config_.sadae_sets_per_step; ++k) {
          batch.push_back(rng.UniformInt(
              static_cast<int>(sadae_sets_->size())));
        }
        sadae_loss += sadae_trainer_->TrainStep(*sadae_sets_, batch, rng);
      }
      log.sadae_loss = sadae_loss / config_.sadae_steps_per_iteration;
    }

    if (evaluator_ && config_.eval_every > 0 &&
        (iter % config_.eval_every == 0 ||
         iter == config_.iterations - 1)) {
      log.eval_return = evaluator_(*agent_, rng);
      S2R_LOG_INFO(
          "iter %d: train_return=%.3f eval_return=%.3f kl=%.4f", iter,
          log.train_return, log.eval_return, log.approx_kl);
    }
    if (observer_ != nullptr &&
        ((config_.checkpoint_every > 0 &&
          (iter + 1) % config_.checkpoint_every == 0) ||
         iter == config_.iterations - 1)) {
      observer_->OnCheckpoint(iter);
    }
    S2R_COUNT("train.iterations", 1);
    S2R_GAUGE_SET("train.return", log.train_return);
    if (log.has_eval()) S2R_GAUGE_SET("train.eval_return", log.eval_return);
    if (observer_ != nullptr) observer_->OnIteration(log);
    logs.push_back(log);
  }
  return logs;
}

}  // namespace core
}  // namespace sim2rec
