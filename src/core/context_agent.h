#ifndef SIM2REC_CORE_CONTEXT_AGENT_H_
#define SIM2REC_CORE_CONTEXT_AGENT_H_

#include <memory>
#include <vector>

#include "nn/gru.h"
#include "nn/lstm.h"
#include "rl/normalizer.h"
#include "rl/rollout.h"
#include "sadae/sadae.h"

namespace sim2rec {
namespace core {

/// Configuration of the context-aware agent. The same class realizes
/// Sim2Rec and the zero-shot baselines by toggling two switches:
///
///   use_extractor  sadae     agent
///   true           attached  Sim2Rec  (hierarchical extractor, Sec. IV-B)
///   true           null      DR-OSI   (plain LSTM extractor)
///   false          -         DR-UNI / DIRECT / Upper-Bound (pure MLP)
struct ContextAgentConfig {
  int obs_dim = 0;
  int action_dim = 0;

  bool use_extractor = true;
  /// Recurrent cell of the extractor phi. The paper implements phi with
  /// an LSTM (Table II) while citing the GRU paper for the RNN idea;
  /// both are provided (see bench/abl02_extractor_cell).
  enum class ExtractorCell { kLstm, kGru };
  ExtractorCell extractor_cell = ExtractorCell::kLstm;
  /// Hidden units of the extractor phi (paper Table II: 64 / 256,
  /// scaled).
  int lstm_hidden = 32;
  /// The fully-connected stack f between the SADAE embedding and the
  /// extractor (paper Sec. V-A1); f_out is its output width.
  std::vector<int> f_hidden = {32};
  int f_out = 8;

  std::vector<int> policy_hidden = {64, 64};
  std::vector<int> value_hidden = {64, 64};
  /// Constant offset added to the policy mean head per action dim.
  /// Centers the initial policy on a sensible action (e.g. the logged
  /// behaviour policy's mean) so rollouts start inside the executable
  /// action region instead of at the clipped origin.
  std::vector<double> action_bias;
  /// Initial (state-independent) log standard deviation of the Gaussian
  /// policy head.
  double init_log_std = -0.5;
  /// Bounds for the trainable log-std.
  double min_log_std = -3.0;
  double max_log_std = 1.0;

  /// Normalize observations with running statistics before the policy /
  /// value / extractor networks (SADAE always receives raw features,
  /// matching its pretraining distribution).
  bool normalize_observations = true;
};

/// Context-aware actor-critic with the hierarchical environment-parameter
/// extractor of Sim2Rec:
///
///   v_t = q_kappa(v | X_t^g)          (SADAE posterior mean over the
///                                      group's state/prev-action set)
///   z_t = LSTM(s_t, a_{t-1}, f(v_t), z_{t-1})
///   a_t ~ N(pi_mean(s_t, z_t), exp(log_std)^2)
///   V_t = value(s_t, z_t)
///
/// The SADAE encoder is shared: its parameters receive gradients from
/// the PPO objective (Eq. 4) through v_t, and are additionally trained
/// with the ELBO (Eq. 8) by the surrounding loop — exactly Algorithm 1
/// line 10.
class ContextAgent : public rl::Agent, public nn::Module {
 public:
  /// `sadae` may be null (DR-OSI / plain agents); when provided it must
  /// outlive the agent and its input layout must equal [obs | action]
  /// (or [obs] for the state-only variant).
  ContextAgent(const ContextAgentConfig& config, sadae::Sadae* sadae,
               Rng& rng);

  int obs_dim() const override { return config_.obs_dim; }
  int action_dim() const override { return config_.action_dim; }

  void BeginEpisode(int n) override;
  StepOutput Step(const nn::Tensor& obs, Rng& rng,
                  bool deterministic) override;
  std::vector<double> Values(const nn::Tensor& obs) override;
  SequenceForward ForwardRollout(nn::Tape& tape,
                                 const rl::Rollout& rollout) override;
  std::vector<nn::Parameter*> TrainableParameters() override;

  const ContextAgentConfig& config() const { return config_; }
  sadae::Sadae* sadae() { return sadae_; }
  const sadae::Sadae* sadae() const { return sadae_; }
  rl::ObservationNormalizer* normalizer() { return normalizer_.get(); }
  const rl::ObservationNormalizer* normalizer() const {
    return normalizer_.get();
  }

  /// Explicit recurrent serving state for a batch of users, one row per
  /// user. Rows are gathered from / scattered back to the per-user
  /// serve::SessionStore, so a user can be served across many
  /// differently-composed micro-batches.
  struct ServeBatch {
    nn::Tensor h;             // [N x lstm_hidden] (empty w/o extractor)
    nn::Tensor c;             // [N x lstm_hidden] (LSTM cell only)
    nn::Tensor prev_actions;  // [N x action_dim]
  };
  struct ServeOutput {
    nn::Tensor actions;  // [N x action_dim], deterministic (mean + bias)
    nn::Tensor values;   // [N x 1], critic diagnostics
    nn::Tensor v;        // [N x latent] per-user group embedding, or empty
  };

  /// Zeroed serving state for n users (a fresh session).
  ServeBatch InitialServeBatch(int n) const;

  /// Deterministic inference step for the serving subsystem. Unlike
  /// Step(), this is const and side-effect-free: recurrent state and
  /// previous actions are threaded through `state` explicitly, and the
  /// observation normalizer is read but never updated. Every row is
  /// computed independently (the SADAE embedding uses each user's own
  /// singleton (obs, prev_action) set, not the batch as a group), so
  /// serving a micro-batch of K users is bitwise-identical to serving
  /// each user alone — the property bench/micro_serve asserts.
  /// On return, `state` holds the advanced h/c and the emitted actions
  /// as prev_actions.
  ServeOutput ServeStep(const nn::Tensor& obs, ServeBatch* state) const;

  /// Current group embedding (diagnostics; valid after a Step with
  /// SADAE attached).
  const nn::Tensor& last_group_embedding() const { return last_v_; }

  /// Read-only submodule access for the inference-plan freezer
  /// (src/infer), which packs these weights into a shape-specialized
  /// float32 serving plan. Null when the config does not build them.
  const nn::Mlp* policy_net() const { return policy_net_.get(); }
  const nn::Mlp* value_net() const { return value_net_.get(); }
  const nn::Mlp* f_net() const { return f_net_.get(); }
  const nn::LstmCell* lstm() const { return lstm_.get(); }
  const nn::GruCell* gru() const { return gru_.get(); }
  const nn::Tensor& action_bias() const { return action_bias_; }

 private:
  /// Builds the SADAE input set from an observation batch and the
  /// previous actions: [obs | prev_a] or [obs] for state-only SADAE.
  nn::Tensor BuildSetInput(const nn::Tensor& obs,
                           const nn::Tensor& prev_actions) const;
  /// Policy head input at one step, inference mode. Updates h/c.
  nn::Tensor ContextInputValue(const nn::Tensor& obs);

  ContextAgentConfig config_;
  sadae::Sadae* sadae_;

  std::unique_ptr<nn::Mlp> f_net_;       // embedding of v (only if sadae)
  std::unique_ptr<nn::LstmCell> lstm_;   // extractor (if LSTM cell)
  std::unique_ptr<nn::GruCell> gru_;     // extractor (if GRU cell)
  std::unique_ptr<nn::Mlp> policy_net_;  // mean head
  std::unique_ptr<nn::Mlp> value_net_;
  nn::Parameter* log_std_ = nullptr;     // [1 x action_dim]
  nn::Tensor action_bias_;               // [1 x action_dim], constant

  std::unique_ptr<rl::ObservationNormalizer> normalizer_;

  // Inference-time recurrent state.
  nn::LstmStateValue state_;
  nn::Tensor prev_actions_;  // [N x action_dim]
  nn::Tensor last_v_;
  int episode_users_ = 0;
};

}  // namespace core
}  // namespace sim2rec

#endif  // SIM2REC_CORE_CONTEXT_AGENT_H_
