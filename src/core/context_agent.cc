#include "core/context_agent.h"

#include <algorithm>
#include <cmath>

namespace sim2rec {
namespace core {
namespace {

constexpr double kLog2Pi = 1.8378770664093453;

}  // namespace

ContextAgent::ContextAgent(const ContextAgentConfig& config,
                           sadae::Sadae* sadae, Rng& rng)
    : config_(config), sadae_(sadae) {
  S2R_CHECK(config.obs_dim > 0 && config.action_dim > 0);
  if (sadae_ != nullptr) {
    S2R_CHECK_MSG(config.use_extractor,
                  "SADAE requires the extractor pathway");
    const int set_dim = sadae_->config().input_dim();
    S2R_CHECK_MSG(set_dim == config.obs_dim ||
                      set_dim == config.obs_dim + config.action_dim,
                  "SADAE input layout must be [obs] or [obs|action]");
    f_net_ = std::make_unique<nn::Mlp>("agent.f", sadae_->latent_dim(),
                                       config.f_hidden, config.f_out, rng,
                                       nn::Activation::kTanh);
    AddChild(f_net_.get());
  }

  int context_dim = config.obs_dim;
  if (config.use_extractor) {
    const int rnn_in = config.obs_dim + config.action_dim +
                       (sadae_ != nullptr ? config.f_out : 0);
    if (config.extractor_cell ==
        ContextAgentConfig::ExtractorCell::kLstm) {
      lstm_ = std::make_unique<nn::LstmCell>("agent.lstm", rnn_in,
                                             config.lstm_hidden, rng);
      AddChild(lstm_.get());
    } else {
      gru_ = std::make_unique<nn::GruCell>("agent.gru", rnn_in,
                                           config.lstm_hidden, rng);
      AddChild(gru_.get());
    }
    context_dim += config.lstm_hidden;
  }

  policy_net_ = std::make_unique<nn::Mlp>(
      "agent.pi", context_dim, config.policy_hidden, config.action_dim,
      rng, nn::Activation::kTanh, nn::Activation::kIdentity,
      /*out_gain=*/0.01);
  AddChild(policy_net_.get());
  value_net_ = std::make_unique<nn::Mlp>(
      "agent.v", context_dim, config.value_hidden, 1, rng,
      nn::Activation::kTanh, nn::Activation::kIdentity, /*out_gain=*/1.0);
  AddChild(value_net_.get());

  log_std_ = AddParameter(
      "agent.log_std",
      nn::Tensor::Full(1, config.action_dim, config.init_log_std));

  action_bias_ = nn::Tensor::Zeros(1, config.action_dim);
  if (!config.action_bias.empty()) {
    S2R_CHECK(static_cast<int>(config.action_bias.size()) ==
              config.action_dim);
    for (int c = 0; c < config.action_dim; ++c) {
      action_bias_(0, c) = config.action_bias[c];
    }
  }

  if (config.normalize_observations) {
    normalizer_ =
        std::make_unique<rl::ObservationNormalizer>(config.obs_dim);
  }
}

void ContextAgent::BeginEpisode(int n) {
  S2R_CHECK(n > 0);
  episode_users_ = n;
  if (lstm_ != nullptr) {
    state_ = lstm_->InitialStateValue(n);
  } else if (gru_ != nullptr) {
    state_.h = gru_->InitialStateValue(n);
    state_.c = nn::Tensor();  // unused by GRU
  }
  prev_actions_ = nn::Tensor::Zeros(n, config_.action_dim);
  last_v_ = nn::Tensor();
}

nn::Tensor ContextAgent::BuildSetInput(
    const nn::Tensor& obs, const nn::Tensor& prev_actions) const {
  S2R_CHECK(sadae_ != nullptr);
  if (sadae_->config().input_dim() == config_.obs_dim) return obs;
  return nn::HStack({obs, prev_actions});
}

nn::Tensor ContextAgent::ContextInputValue(const nn::Tensor& obs) {
  const int n = obs.rows();
  nn::Tensor obs_n =
      normalizer_ != nullptr ? normalizer_->Normalize(obs) : obs;
  if (!config_.use_extractor) return obs_n;

  std::vector<nn::Tensor> parts = {obs_n, prev_actions_};
  if (sadae_ != nullptr) {
    last_v_ = sadae_->EncodeSetValue(BuildSetInput(obs, prev_actions_));
    const nn::Tensor fv = f_net_->ForwardValue(last_v_);  // [1 x f_out]
    nn::Tensor fv_tiled(n, config_.f_out);
    for (int r = 0; r < n; ++r) fv_tiled.SetRow(r, fv);
    parts.push_back(fv_tiled);
  }
  const nn::Tensor rnn_in = nn::HStack(parts);
  if (lstm_ != nullptr) {
    state_ = lstm_->ForwardValue(rnn_in, state_);
  } else {
    state_.h = gru_->ForwardValue(rnn_in, state_.h);
  }
  return nn::HStack({obs_n, state_.h});
}

rl::Agent::StepOutput ContextAgent::Step(const nn::Tensor& obs, Rng& rng,
                                         bool deterministic) {
  S2R_CHECK(obs.rows() == episode_users_);
  S2R_CHECK(obs.cols() == config_.obs_dim);
  if (normalizer_ != nullptr) normalizer_->Update(obs);

  const nn::Tensor ctx = ContextInputValue(obs);
  nn::Tensor mean = policy_net_->ForwardValue(ctx);
  for (int r = 0; r < mean.rows(); ++r)
    for (int c = 0; c < mean.cols(); ++c) mean(r, c) += action_bias_(0, c);
  const nn::Tensor value = value_net_->ForwardValue(ctx);

  const int n = obs.rows();
  const int ad = config_.action_dim;
  StepOutput out;
  out.actions = nn::Tensor(n, ad);
  out.log_probs.resize(n);
  out.values.resize(n);

  for (int i = 0; i < n; ++i) {
    double logp = -0.5 * ad * kLog2Pi;
    for (int c = 0; c < ad; ++c) {
      const double log_std =
          std::clamp(log_std_->value(0, c), config_.min_log_std,
                     config_.max_log_std);
      const double sigma = std::exp(log_std);
      const double a = deterministic ? mean(i, c)
                                     : mean(i, c) + sigma * rng.Normal();
      out.actions(i, c) = a;
      const double z = (a - mean(i, c)) / sigma;
      logp += -0.5 * z * z - log_std;
    }
    out.log_probs[i] = logp;
    out.values[i] = value(i, 0);
  }
  prev_actions_ = out.actions;
  return out;
}

ContextAgent::ServeBatch ContextAgent::InitialServeBatch(int n) const {
  S2R_CHECK(n > 0);
  ServeBatch batch;
  if (config_.use_extractor) {
    batch.h = nn::Tensor::Zeros(n, config_.lstm_hidden);
    if (lstm_ != nullptr) {
      batch.c = nn::Tensor::Zeros(n, config_.lstm_hidden);
    }
  }
  batch.prev_actions = nn::Tensor::Zeros(n, config_.action_dim);
  return batch;
}

ContextAgent::ServeOutput ContextAgent::ServeStep(const nn::Tensor& obs,
                                                  ServeBatch* state) const {
  S2R_CHECK(state != nullptr);
  const int n = obs.rows();
  S2R_CHECK(n > 0 && obs.cols() == config_.obs_dim);
  S2R_CHECK(state->prev_actions.rows() == n &&
            state->prev_actions.cols() == config_.action_dim);

  const nn::Tensor obs_n =
      normalizer_ != nullptr ? normalizer_->Normalize(obs) : obs;

  ServeOutput out;
  nn::Tensor ctx;
  if (config_.use_extractor) {
    S2R_CHECK(state->h.rows() == n &&
              state->h.cols() == config_.lstm_hidden);
    std::vector<nn::Tensor> parts = {obs_n, state->prev_actions};
    if (sadae_ != nullptr) {
      // SADAE receives raw (unnormalized) features, matching its
      // pretraining distribution; each user's embedding comes from their
      // own singleton set so batch composition cannot leak across rows.
      out.v = sadae_->EncodeRowsValue(
          BuildSetInput(obs, state->prev_actions));
      parts.push_back(f_net_->ForwardValue(out.v));
    }
    const nn::Tensor rnn_in = nn::HStack(parts);
    if (lstm_ != nullptr) {
      S2R_CHECK(state->c.rows() == n &&
                state->c.cols() == config_.lstm_hidden);
      const nn::LstmStateValue next =
          lstm_->ForwardValue(rnn_in, {state->h, state->c});
      state->h = next.h;
      state->c = next.c;
    } else {
      state->h = gru_->ForwardValue(rnn_in, state->h);
    }
    ctx = nn::HStack({obs_n, state->h});
  } else {
    ctx = obs_n;
  }

  out.actions = policy_net_->ForwardValue(ctx);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < config_.action_dim; ++c) {
      out.actions(r, c) += action_bias_(0, c);
    }
  }
  out.values = value_net_->ForwardValue(ctx);
  state->prev_actions = out.actions;
  return out;
}

std::vector<double> ContextAgent::Values(const nn::Tensor& obs) {
  // Bootstrap value without committing recurrent state.
  const nn::LstmStateValue saved_state = state_;
  const nn::Tensor saved_prev = prev_actions_;
  const nn::Tensor ctx = ContextInputValue(obs);
  const nn::Tensor value = value_net_->ForwardValue(ctx);
  state_ = saved_state;
  prev_actions_ = saved_prev;
  std::vector<double> out(obs.rows());
  for (int i = 0; i < obs.rows(); ++i) out[i] = value(i, 0);
  return out;
}

rl::Agent::SequenceForward ContextAgent::ForwardRollout(
    nn::Tape& tape, const rl::Rollout& rollout) {
  const int t_max = rollout.num_steps;
  const int n = rollout.num_users;
  S2R_CHECK(t_max > 0 && n > 0);

  nn::LstmState state;
  if (lstm_ != nullptr) {
    state = lstm_->InitialState(tape, n);
  } else if (gru_ != nullptr) {
    state.h = gru_->InitialState(tape, n);
  }

  nn::Var log_std_leaf = nn::ClipV(tape.Leaf(log_std_),
                                   config_.min_log_std,
                                   config_.max_log_std);
  nn::Var log_std_tiled = nn::TileRowsV(log_std_leaf, n);

  std::vector<nn::Var> log_prob_steps, value_steps, entropy_steps;
  log_prob_steps.reserve(t_max);
  value_steps.reserve(t_max);
  entropy_steps.reserve(t_max);

  for (int t = 0; t < t_max; ++t) {
    const nn::Tensor& raw_obs = rollout.obs[t];
    const nn::Tensor obs_n = normalizer_ != nullptr
                                 ? normalizer_->Normalize(raw_obs)
                                 : raw_obs;
    const nn::Tensor prev_a =
        t == 0 ? nn::Tensor::Zeros(n, config_.action_dim)
               : rollout.actions[t - 1];

    nn::Var obs_v = tape.Constant(obs_n);
    nn::Var ctx;
    if (config_.use_extractor) {
      nn::Var prev_a_v = tape.Constant(prev_a);
      std::vector<nn::Var> parts = {obs_v, prev_a_v};
      if (sadae_ != nullptr) {
        // v_t from the group set, with gradients into q_kappa (Eq. 4).
        nn::DiagGaussian posterior =
            sadae_->EncodeSet(tape, BuildSetInput(raw_obs, prev_a));
        nn::Var fv = f_net_->Forward(tape, posterior.mean);
        parts.push_back(nn::TileRowsV(fv, n));
      }
      nn::Var rnn_in = nn::ConcatColsV(parts);
      if (lstm_ != nullptr) {
        state = lstm_->Forward(tape, rnn_in, state);
      } else {
        state.h = gru_->Forward(tape, rnn_in, state.h);
      }
      ctx = nn::ConcatColsV({obs_v, state.h});
    } else {
      ctx = obs_v;
    }

    nn::Var mean = nn::AddRowBroadcastV(
        policy_net_->Forward(tape, ctx), tape.Constant(action_bias_));
    nn::DiagGaussian dist{mean, log_std_tiled};
    log_prob_steps.push_back(dist.LogProb(rollout.actions[t]));
    entropy_steps.push_back(dist.Entropy());
    value_steps.push_back(value_net_->Forward(tape, ctx));
  }

  SequenceForward forward;
  forward.log_probs = nn::ConcatRowsV(log_prob_steps);
  forward.values = nn::ConcatRowsV(value_steps);
  forward.entropy = nn::ConcatRowsV(entropy_steps);
  return forward;
}

std::vector<nn::Parameter*> ContextAgent::TrainableParameters() {
  std::vector<nn::Parameter*> params = Parameters();
  if (sadae_ != nullptr) {
    // kappa (and theta) are also updated through the PPO objective,
    // matching Algorithm 1 line 10; decoder parameters simply receive
    // zero gradient from this pathway.
    const auto sadae_params = sadae_->Parameters();
    params.insert(params.end(), sadae_params.begin(), sadae_params.end());
  }
  return params;
}

}  // namespace core
}  // namespace sim2rec
