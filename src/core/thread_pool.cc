#include "core/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"

namespace sim2rec {
namespace core {
namespace {

/// True while the current thread is executing iterations of some batch;
/// nested ParallelFor calls detect this and run inline.
thread_local bool t_inside_parallel = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_participants_(std::max(1, num_threads)) {
  workers_.reserve(num_participants_ - 1);
  for (int w = 1; w < num_participants_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("SIM2REC_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return std::min(parsed, 256);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreads());
  return pool;
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (n == 1 || workers_.empty() || t_inside_parallel) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  // Only the dispatching path is instrumented: serial fallbacks above
  // are not "pool batches", and counting them would double-bill nested
  // calls.
  S2R_COUNT("core.pool.batches", 1);
  S2R_COUNT("core.pool.iterations", n);
  obs::ScopedTimerUs batch_timer("core.pool.batch_us");

  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  const int p = num_participants_;
  batch.ranges.reserve(p);
  for (int k = 0; k < p; ++k) {
    auto range = std::make_unique<Range>();
    range->next.store(static_cast<int>(
        static_cast<int64_t>(n) * k / p));
    range->end = static_cast<int>(
        static_cast<int64_t>(n) * (k + 1) / p);
    batch.ranges.push_back(std::move(range));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
    ++generation_;
    workers_active_ = static_cast<int>(workers_.size());
  }
  work_cv_.notify_all();

  RunParticipant(&batch, 0);

  // The caller has drained every range, but workers may still be mid-
  // iteration (or not yet woken); wait until each has cycled so `batch`
  // can safely leave scope.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return workers_active_ == 0; });
    batch_ = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void ThreadPool::WorkerLoop(int participant) {
  uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen;
      });
      if (shutdown_) return;
      seen = generation_;
      batch = batch_;
    }
    if (batch != nullptr) RunParticipant(batch, participant);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_active_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunParticipant(Batch* batch, int participant) {
  t_inside_parallel = true;
  const auto run = [batch](int i) {
    if (!batch->cancelled.load(std::memory_order_acquire)) {
      try {
        (*batch->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch->error_mutex);
        if (!batch->error) batch->error = std::current_exception();
        batch->cancelled.store(true, std::memory_order_release);
      }
    }
  };

  // Own range first, then steal iterations from every other range.
  const int p = static_cast<int>(batch->ranges.size());
  for (int offset = 0; offset < p; ++offset) {
    Range& range = *batch->ranges[(participant + offset) % p];
    for (;;) {
      const int i = range.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= range.end) break;
      run(i);
    }
  }
  t_inside_parallel = false;
}

}  // namespace core
}  // namespace sim2rec
