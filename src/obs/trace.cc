#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "obs/json.h"

namespace sim2rec {
namespace obs {
namespace {

std::string FormatMicros(double us) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.3f", us < 0.0 ? 0.0 : us);
  return buffer;
}

// Strict-JSON number for span arg values (non-finite doubles would be
// invalid JSON, so they export as null, matching metrics ToJson).
std::string FormatArgValue(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never dies
  return *recorder;
}

TraceRecorder::ThreadLog* TraceRecorder::LogForThisThread() {
  thread_local ThreadLog* cached = nullptr;
  if (cached != nullptr) return cached;
  auto log = std::make_unique<ThreadLog>();
  std::lock_guard<std::mutex> lock(mutex_);
  log->tid = static_cast<int>(logs_.size()) + 1;
  cached = log.get();
  logs_.push_back(std::move(log));
  return cached;
}

void TraceRecorder::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    log->events.clear();
    log->dropped = 0;
  }
  active_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() {
  active_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::RecordComplete(const TraceEvent& event) {
  ThreadLog* log = LogForThisThread();
  std::lock_guard<std::mutex> lock(log->mutex);
  if (log->events.size() >= kMaxEventsPerThread) {
    ++log->dropped;
    return;
  }
  log->events.push_back(event);
}

int64_t TraceRecorder::event_count() const {
  int64_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    total += static_cast<int64_t>(log->events.size());
  }
  return total;
}

int64_t TraceRecorder::dropped_count() const {
  int64_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    total += log->dropped;
  }
  return total;
}

std::vector<std::string> TraceRecorder::SpanNames() const {
  std::set<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    for (const TraceEvent& event : log->events) names.insert(event.name);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

std::vector<TraceEvent> TraceRecorder::EventsSnapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    out.insert(out.end(), log->events.begin(), log->events.end());
  }
  return out;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    for (const TraceEvent& event : log->events) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":" + JsonQuote(event.name) +
             ",\"cat\":\"sim2rec\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
             std::to_string(log->tid) + ",\"ts\":" + FormatMicros(event.ts_us) +
             ",\"dur\":" + FormatMicros(event.dur_us);
      if (event.num_args > 0 || event.trace_id != 0) {
        out += ",\"args\":{";
        for (int i = 0; i < event.num_args; ++i) {
          if (i > 0) out += ',';
          out += JsonQuote(event.arg_names[i]) + ':' +
                 FormatArgValue(event.arg_values[i]);
        }
        if (event.trace_id != 0) {
          // Decimal string: u64 trace ids do not fit a JSON double.
          if (event.num_args > 0) out += ',';
          out += "\"trace_id\":\"" + std::to_string(event.trace_id) + "\"";
        }
        out += '}';
      }
      out += '}';
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) return false;
  file << ToChromeTraceJson();
  file.flush();
  return file.good();
}

}  // namespace obs
}  // namespace sim2rec
