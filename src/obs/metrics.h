#ifndef SIM2REC_OBS_METRICS_H_
#define SIM2REC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sim2rec {
namespace obs {

/// Process-wide observability layer: named counters, gauges and
/// log-bucketed histograms, cheap enough for hot paths.
///
/// Overhead policy (see DESIGN.md "Observability"):
///  * Recording never takes a lock — counters are sharded atomics,
///    histogram buckets are atomics, gauges are single atomic stores.
///  * Registration (name -> metric lookup) takes the registry mutex;
///    hot paths amortize it to one lookup per call site via the
///    function-local statics inside the S2R_* macros below.
///  * Instrumentation must be determinism-neutral: it may read values
///    and clocks but never touches an Rng or alters control flow.
///  * Two kill switches: `SetEnabled(false)` at run time (also the
///    SIM2REC_OBS=0 environment variable) and the SIM2REC_OBS=OFF
///    CMake option at compile time (defines SIM2REC_OBS_DISABLED),
///    which turns `Enabled()` into `constexpr false` so every gated
///    block is dead-code eliminated.
///
/// The primitive classes themselves record unconditionally — the
/// enable gate lives in the wiring macros — so components that own a
/// metric object as functional API surface (serve::LatencyHistogram)
/// keep working whatever the global switch says.

#if defined(SIM2REC_OBS_DISABLED)
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
namespace internal {
std::atomic<bool>& EnabledFlag();
}  // namespace internal

/// True when instrumentation should record. Initialized once from the
/// SIM2REC_OBS environment variable ("0"/"off" disable).
inline bool Enabled() {
  return internal::EnabledFlag().load(std::memory_order_relaxed);
}
inline void SetEnabled(bool enabled) {
  internal::EnabledFlag().store(enabled, std::memory_order_relaxed);
}
#endif

/// Monotonically increasing event count. Sharded across cache lines so
/// concurrent hot-path increments from many threads do not serialize on
/// one cache line; reads sum the shards.
class Counter {
 public:
  static constexpr int kShards = 8;

  Counter();

  void Add(int64_t delta = 1);
  int64_t value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Last-written value (losses, learning rates, queue depths).
///
/// Merge semantics: gauges do not sum. When snapshots from several
/// registries/processes are folded with MergeSnapshots, the LAST part
/// (in the caller's part order) carrying a given gauge name wins
/// wholesale. A merged multi-process view therefore shows one
/// process's gauge values; the `obs.pid` / `obs.snapshot_seq` process
/// gauges the MetricsExporter publishes exist precisely so the merged
/// result stays attributable to the process that won.
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
    set_.store(true, std::memory_order_relaxed);
  }
  /// Monotonic Set: keeps the larger of the current and new value, so
  /// concurrent writers racing on an ordered quantity (e.g. the
  /// checkpoint generation a shard has observed) can never publish a
  /// regression. Lock-free CAS loop; an unset gauge takes any value.
  void SetMax(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (!set_.load(std::memory_order_relaxed) || value > current) {
      if (value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
        set_.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  /// False until the first Set (exports can skip never-written gauges).
  bool has_value() const { return set_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0.0, std::memory_order_relaxed);
    set_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<bool> set_{false};
};

/// One numeric tag attached to an exemplar ("shard" -> 3, "batch" -> 17).
struct ExemplarTag {
  std::string name;
  double value = 0.0;
};

/// One concrete sample retained for a histogram bucket: the recorded
/// value, the trace id of the request that produced it (0 when none was
/// in scope) and up to LogHistogram::kMaxExemplarTags numeric tags. The
/// whole point of exemplars is that a p99 spike in the aggregate
/// resolves to a specific request you can find in the trace output.
struct ExemplarSample {
  int bucket = 0;
  double value = 0.0;
  uint64_t trace_id = 0;
  std::vector<ExemplarTag> tags;
};

/// Log-bucketed histogram over non-negative doubles: O(1) memory and
/// record cost at any sample volume. Buckets double from 1; bucket 0 is
/// [0, 1). Record is lock-free (atomic bucket counters + CAS min/max),
/// so it is safe — and cheap — from any number of threads; quantiles
/// are interpolated linearly inside the owning bucket and clamped to
/// the tracked [min, max], so q=0 / q=1 / single-sample queries return
/// exact observed values while interior quantiles carry bucket-sized
/// error (fine for p50/p95/p99 reporting, not for asserting exact
/// values).
///
/// Exemplars: each bucket additionally keeps a tiny reservoir of
/// kExemplarSlots recent (value, trace_id, tags) samples, written via
/// RecordWithExemplar. Writers claim a slot with a seqlock CAS and
/// *drop the exemplar on contention* rather than wait — the aggregate
/// counts above are always exact; the exemplar reservoir is best-effort
/// by design and never blocks a hot path. Slot rotation is driven by
/// the bucket's own sample count (no Rng — instrumentation stays
/// determinism-neutral), so the reservoir holds the most recent
/// samples per bucket.
class LogHistogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kExemplarSlots = 2;   // per-bucket reservoir size
  static constexpr int kMaxExemplarTags = 4;

  void Record(double value);

  /// Record + retain an exemplar for the owning bucket. Tag names must
  /// be string literals (or otherwise immortal): the hot path stores
  /// the pointer, never copies the text. Pass up to kMaxExemplarTags
  /// (name, value) pairs.
  void RecordWithExemplar(double value, uint64_t trace_id,
                          const char* tag_name0 = nullptr,
                          double tag_value0 = 0.0,
                          const char* tag_name1 = nullptr,
                          double tag_value1 = 0.0,
                          const char* tag_name2 = nullptr,
                          double tag_value2 = 0.0,
                          const char* tag_name3 = nullptr,
                          double tag_value3 = 0.0);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Smallest / largest recorded value; 0 when empty.
  double min_value() const;
  double max_value() const;
  /// q in [0, 1]; 0 when empty. Snapshot-consistent against concurrent
  /// Record calls (the total is derived from the same bucket loads the
  /// interpolation uses).
  double Quantile(double q) const;
  /// Point-in-time copy of the kBuckets bucket counters — the mergeable
  /// representation (see MergeSnapshots): two histograms merged at
  /// bucket granularity lose nothing the individual quantile queries
  /// had.
  std::vector<int64_t> BucketCounts() const;
  /// Stable copy of every written exemplar slot, ordered by bucket.
  /// Seqlock-consistent against concurrent writers: a slot mid-write is
  /// retried a few times, then skipped (best-effort, like the writes).
  std::vector<ExemplarSample> Exemplars() const;
  void Reset();

 private:
  /// Seqlock-guarded exemplar slot: even seq = stable, odd = writer in
  /// flight, 0 = never written. Payload fields are relaxed atomics so
  /// concurrent access is well-defined; the seq protocol makes reads
  /// internally consistent.
  struct alignas(64) ExemplarSlot {
    std::atomic<uint32_t> seq{0};
    std::atomic<double> value{0.0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<int> num_tags{0};
    std::atomic<const char*> tag_names[kMaxExemplarTags] = {};
    std::atomic<double> tag_values[kMaxExemplarTags] = {};
  };

  static int BucketFor(double value);

  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
  ExemplarSlot exemplar_slots_[kBuckets][kExemplarSlots];
};

struct CounterSample {
  std::string name;
  int64_t value = 0;
};
struct GaugeSample {
  std::string name;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  int64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Raw log2-bucket counts (LogHistogram::kBuckets entries when the
  /// sample came from a registry snapshot). Carried so snapshots from
  /// several registries/processes can be merged losslessly at bucket
  /// granularity; empty for hand-built samples, in which case a merge
  /// falls back to conservative quantiles (max across parts).
  std::vector<int64_t> buckets;
  /// Best-effort retained samples, ordered by bucket (see LogHistogram).
  /// Merges concatenate and re-sort; codec v2 carries them on the wire.
  std::vector<ExemplarSample> exemplars;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — strict
  /// JSON (non-finite doubles exported as null). Histogram objects
  /// include an "exemplars" array when any were retained (trace ids as
  /// decimal strings: u64 does not fit a JSON double).
  std::string ToJson() const;
  /// Aligned human-readable table, one metric per line.
  std::string ToText() const;
  /// Prometheus text exposition (format 0.0.4): dots in metric names
  /// become underscores, counters export as `# TYPE ... counter`,
  /// gauges as gauge, histograms as summaries (quantile-labelled
  /// series plus _sum/_count). Exemplars ride along as `# exemplar`
  /// comment lines, which scrapers ignore but humans reading
  /// `curl /metrics` do not.
  std::string ToPrometheusText() const;
};

/// Quantile interpolation over log2 bucket counts (bucket 0 = [0, 1),
/// bucket b spans [2^(b-1), 2^b)), clamped to [min_clamp, max_clamp].
/// Shared by LogHistogram::Quantile and MergeSnapshots so a merged
/// histogram answers exactly like a single histogram holding the union
/// of the samples would.
double QuantileFromLogBuckets(const int64_t* buckets, int num_buckets,
                              double q, double min_clamp,
                              double max_clamp);

/// Merges per-registry snapshots into one unified view — the
/// cross-process aggregation seam: each serving shard (or, later, each
/// server process) snapshots its own registry, and the front end merges
/// them. Counters sum by name; gauges keep the last part's value (parts
/// are ordered, last writer wins); histograms with bucket counts merge
/// exactly (bucket-wise sums, min of mins, max of maxes, quantiles
/// recomputed from the merged buckets), histograms without buckets fall
/// back to max-of-parts quantiles. Names present in any part appear in
/// the result, sorted.
MetricsSnapshot MergeSnapshots(const std::vector<MetricsSnapshot>& parts);

/// Name -> metric map with stable pointers: a metric, once created,
/// lives until process exit, so call sites may cache the pointer
/// forever. Counters, gauges and histograms are separate namespaces;
/// by convention names are dot-separated `<module>.<what>[.<unit>]`
/// (e.g. "serve.latency_us") and a name is used for one kind only.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every S2R_* macro records into.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LogHistogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric (tests / bench phase boundaries); pointers
  /// stay valid.
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

/// Microseconds on a process-local monotonic clock (trace timestamps,
/// scoped timers).
double MonotonicMicros();

/// Records wall time between construction and destruction into a
/// histogram, in microseconds. When observability is disabled the
/// constructor returns before touching the clock or the registry.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(const char* histogram_name) {
    if (!Enabled()) return;
    histogram_ = MetricsRegistry::Global().GetHistogram(histogram_name);
    start_us_ = MonotonicMicros();
  }
  ~ScopedTimerUs() {
    if (histogram_ != nullptr) {
      histogram_->Record(MonotonicMicros() - start_us_);
    }
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  LogHistogram* histogram_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace obs
}  // namespace sim2rec

// Hot-path wiring macros. `name` must be a string literal (each call
// site caches its registry lookup in a function-local static). All of
// them compile to nothing under SIM2REC_OBS_DISABLED because
// obs::Enabled() is constexpr false there.
#define S2R_COUNT(name, delta)                                           \
  do {                                                                   \
    if (::sim2rec::obs::Enabled()) {                                     \
      static ::sim2rec::obs::Counter* s2r_obs_counter =                  \
          ::sim2rec::obs::MetricsRegistry::Global().GetCounter(name);    \
      s2r_obs_counter->Add(delta);                                       \
    }                                                                    \
  } while (0)

#define S2R_GAUGE_SET(name, value)                                       \
  do {                                                                   \
    if (::sim2rec::obs::Enabled()) {                                     \
      static ::sim2rec::obs::Gauge* s2r_obs_gauge =                      \
          ::sim2rec::obs::MetricsRegistry::Global().GetGauge(name);      \
      s2r_obs_gauge->Set(value);                                         \
    }                                                                    \
  } while (0)

#define S2R_HISTOGRAM(name, value)                                       \
  do {                                                                   \
    if (::sim2rec::obs::Enabled()) {                                     \
      static ::sim2rec::obs::LogHistogram* s2r_obs_histogram =           \
          ::sim2rec::obs::MetricsRegistry::Global().GetHistogram(name);  \
      s2r_obs_histogram->Record(value);                                  \
    }                                                                    \
  } while (0)

// As S2R_HISTOGRAM, but also retains an exemplar: the trace id plus up
// to four (literal-name, double) tag pairs, e.g.
//   S2R_HISTOGRAM_EX("serve.latency_us", us, trace_id, "shard", sid);
#define S2R_HISTOGRAM_EX(name, value, trace_id, ...)                     \
  do {                                                                   \
    if (::sim2rec::obs::Enabled()) {                                     \
      static ::sim2rec::obs::LogHistogram* s2r_obs_histogram =           \
          ::sim2rec::obs::MetricsRegistry::Global().GetHistogram(name);  \
      s2r_obs_histogram->RecordWithExemplar(                             \
          value, trace_id __VA_OPT__(, ) __VA_ARGS__);                   \
    }                                                                    \
  } while (0)

#endif  // SIM2REC_OBS_METRICS_H_
