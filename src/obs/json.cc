#include "obs/json.h"

#include <cctype>
#include <cstdio>

namespace sim2rec {
namespace obs {
namespace {

constexpr int kMaxDepth = 256;

/// Recursive-descent validator over a byte range. `pos` always points
/// at the next unconsumed byte.
class Validator {
 public:
  explicit Validator(const std::string& text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWhitespace();
    if (!Value(0)) {
      Fill(error);
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters after the document";
      Fill(error);
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* reason) {
    if (reason_ == nullptr) reason_ = reason;
    return false;
  }

  void Fill(std::string* error) const {
    if (error == nullptr) return;
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer), "offset %zu: %s", pos_,
                  reason_ != nullptr ? reason_ : "invalid JSON");
    *error = buffer;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (AtEnd() || Peek() != *p) return Fail("invalid literal");
    }
    return true;
  }

  bool String() {
    ++pos_;  // opening quote
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return Fail("unterminated escape");
        const char e = Peek();
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++pos_;
            if (AtEnd() || !std::isxdigit(
                               static_cast<unsigned char>(Peek()))) {
              return Fail("bad \\u escape");
            }
          }
          ++pos_;
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return Fail("unknown escape character");
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
  }

  bool Digits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("digit expected");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    return true;
  }

  bool Number() {
    if (Peek() == '-') ++pos_;
    if (AtEnd()) return Fail("digit expected");
    if (Peek() == '0') {
      ++pos_;  // no leading zeros
    } else if (!Digits()) {
      return false;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (!Digits()) return false;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!Digits()) return false;
    }
    return true;
  }

  bool Object(int depth) {
    ++pos_;  // '{'
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("object key expected");
      if (!String()) return false;
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Fail("':' expected");
      ++pos_;
      SkipWhitespace();
      if (!Value(depth)) return false;
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return Fail("',' or '}' expected");
    }
  }

  bool Array(int depth) {
    ++pos_;  // '['
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!Value(depth)) return false;
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return Fail("',' or ']' expected");
    }
  }

  bool Value(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (AtEnd()) return Fail("value expected");
    const char c = Peek();
    switch (c) {
      case '{':
        return Object(depth + 1);
      case '[':
        return Array(depth + 1);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return Number();
        }
        return Fail("value expected");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  const char* reason_ = nullptr;
};

}  // namespace

bool JsonValidate(const std::string& text, std::string* error) {
  return Validator(text).Run(error);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string JsonQuote(const std::string& s) {
  return '"' + JsonEscape(s) + '"';
}

}  // namespace obs
}  // namespace sim2rec
