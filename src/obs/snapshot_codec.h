#ifndef SIM2REC_OBS_SNAPSHOT_CODEC_H_
#define SIM2REC_OBS_SNAPSHOT_CODEC_H_

#include <cstddef>
#include <string>

#include "obs/metrics.h"

namespace sim2rec {
namespace obs {

/// Binary (de)serialization of MetricsSnapshot — the cross-process leg
/// of the aggregation story: each serving process snapshots its own
/// registry, the snapshot travels over the serving transport as a
/// kMetricsReply payload, and the receiver folds the decoded parts with
/// MergeSnapshots exactly as it folds in-process shard registries.
///
/// Format (all integers little-endian; see docs/PROTOCOL.md for the
/// byte-level reference):
///   u32 magic "S2MX", u16 codec version (currently 1)
///   u32 counter count,   each: u16 name length, name bytes, i64 value
///   u32 gauge count,     each: name, f64 value
///   u32 histogram count, each: name, i64 count,
///                        f64 mean/min/max/p50/p95/p99,
///                        u32 bucket count, i64 buckets[]
/// Doubles are raw IEEE-754 bit patterns, so a decoded snapshot is
/// bit-identical to the encoded one — merged quantiles answer the same
/// whether the parts arrived over the wire or not.
///
/// The codec version mirrors the checkpoint-manifest compatibility
/// policy: bumped only when correct decoding requires new
/// understanding; a version beyond the reader's fails the decode
/// (callers distinguish it via the version out-param if they care).
std::string EncodeSnapshot(const MetricsSnapshot& snapshot);

/// Staged decode: returns false on truncation, trailing garbage, a bad
/// magic, an unsupported version or an implausible count, and leaves
/// `out` untouched in every failure case. Never aborts — the input is
/// network data.
bool DecodeSnapshot(const void* data, size_t size, MetricsSnapshot* out);

inline bool DecodeSnapshot(const std::string& data, MetricsSnapshot* out) {
  return DecodeSnapshot(data.data(), data.size(), out);
}

}  // namespace obs
}  // namespace sim2rec

#endif  // SIM2REC_OBS_SNAPSHOT_CODEC_H_
