#ifndef SIM2REC_OBS_SNAPSHOT_CODEC_H_
#define SIM2REC_OBS_SNAPSHOT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace sim2rec {
namespace obs {

/// Binary (de)serialization of MetricsSnapshot — the cross-process leg
/// of the aggregation story: each serving process snapshots its own
/// registry, the snapshot travels over the serving transport as a
/// kMetricsReply payload, and the receiver folds the decoded parts with
/// MergeSnapshots exactly as it folds in-process shard registries.
///
/// Format (all integers little-endian; see docs/PROTOCOL.md for the
/// byte-level reference):
///   u32 magic "S2MX", u16 codec version (currently 2)
///   u32 counter count,   each: u16 name length, name bytes, i64 value
///   u32 gauge count,     each: name, f64 value
///   u32 histogram count, each: name, i64 count,
///                        f64 mean/min/max/p50/p95/p99,
///                        u32 bucket count, i64 buckets[]
/// Version 2 appends zero or more self-describing trailing sections
/// after the v1 body, each framed as
///   u16 section id, u32 payload length, payload bytes
/// so a reader that does not understand a section skips it by length.
/// Section 1 carries histogram exemplars:
///   u32 histogram entries, each: u16 name length, name bytes,
///   u32 exemplar count, each: u8 bucket, f64 value, u64 trace id,
///   u8 tag count, each tag: u16 name length, name bytes, f64 value
/// Doubles are raw IEEE-754 bit patterns, so a decoded snapshot is
/// bit-identical to the encoded one — merged quantiles answer the same
/// whether the parts arrived over the wire or not.
///
/// Compatibility policy (mirrors the checkpoint manifest and the wire
/// protocol): the codec evolves additively — a version bump adds
/// trailing sections, never reshapes the v1 body. A reader accepts
/// versions up to its own: within that range, sections it does not
/// parse (unknown id, or the caller capped `max_version` below the
/// payload's needs) are skipped by length and the result is
/// kOkIgnoredNewer — usable, just partial. Versions beyond the
/// reader's own get the typed kUnsupportedVersion verdict, never a
/// guess. A change that would break the base body gets a new magic,
/// not a new version. An exemplar-free snapshot encodes as
/// byte-identical v1, so v1-only consumers never even see a version
/// they don't know.
std::string EncodeSnapshot(const MetricsSnapshot& snapshot);

/// Typed decode outcome (ordered roughly by how happy you should be).
enum class SnapshotDecodeStatus {
  /// Fully decoded, nothing skipped.
  kOk = 0,
  /// Base body decoded; newer-version trailing sections (or unknown
  /// section ids) were skipped. The snapshot is usable but partial —
  /// e.g. a v1 reader sees a v2 payload's metrics without exemplars.
  kOkIgnoredNewer,
  /// First four bytes are not "S2MX": not a snapshot at all.
  kBadMagic,
  /// The payload declares a version newer than this build understands;
  /// nothing is decoded and `out` is untouched. The additive-evolution
  /// contract is only known to hold for versions this decoder has seen
  /// specified, so it refuses rather than guesses.
  kUnsupportedVersion,
  /// Truncation, trailing garbage, implausible counts, version 0.
  kMalformed,
};

/// Current codec version (what EncodeSnapshot emits for snapshots that
/// need v2 features; exemplar-free snapshots encode as v1).
uint16_t SnapshotCodecVersion();

/// Staged decode with a typed verdict: `out` is written only for the
/// two kOk* statuses and left untouched on every failure. Never aborts
/// — the input is network data. `max_version` caps what the caller
/// accepts (defaults to the newest this build knows; tests pass lower
/// values to exercise the downgrade path).
SnapshotDecodeStatus DecodeSnapshotEx(const void* data, size_t size,
                                      MetricsSnapshot* out,
                                      uint16_t max_version = 0xFFFF);

/// Convenience wrapper: true on kOk / kOkIgnoredNewer.
bool DecodeSnapshot(const void* data, size_t size, MetricsSnapshot* out);

inline bool DecodeSnapshot(const std::string& data, MetricsSnapshot* out) {
  return DecodeSnapshot(data.data(), data.size(), out);
}

inline SnapshotDecodeStatus DecodeSnapshotEx(const std::string& data,
                                             MetricsSnapshot* out,
                                             uint16_t max_version = 0xFFFF) {
  return DecodeSnapshotEx(data.data(), data.size(), out, max_version);
}

}  // namespace obs
}  // namespace sim2rec

#endif  // SIM2REC_OBS_SNAPSHOT_CODEC_H_
