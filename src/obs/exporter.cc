#include "obs/exporter.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/snapshot_codec.h"

namespace sim2rec {
namespace obs {
namespace {

std::string FormatSeconds(double s) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6f", s < 0.0 ? 0.0 : s);
  return buffer;
}

}  // namespace

MetricsExporter::MetricsExporter(const MetricsExporterConfig& config)
    : config_(config),
      start_us_(MonotonicMicros()),
      pid_(static_cast<int64_t>(::getpid())) {}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::AddSource(
    std::function<bool(MetricsSnapshot*)> source) {
  std::lock_guard<std::mutex> lock(mutex_);
  sources_.push_back(std::move(source));
}

void MetricsExporter::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { RunLoop(); });
}

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool MetricsExporter::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void MetricsExporter::RunLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    TakeSampleLocked();
    wake_.wait_for(
        lock,
        std::chrono::milliseconds(std::max(1, config_.interval_ms)),
        [this] { return stop_requested_; });
  }
  TakeSampleLocked();  // final sample so Stop() flushes the end state
}

ExporterSample MetricsExporter::TickOnce() {
  std::lock_guard<std::mutex> lock(mutex_);
  return TakeSampleLocked();
}

ExporterSample MetricsExporter::TakeSampleLocked() {
  MetricsRegistry& registry =
      config_.registry != nullptr ? *config_.registry
                                  : MetricsRegistry::Global();
  const double uptime_s = (MonotonicMicros() - start_us_) * 1e-6;
  const int64_t seq = seq_ + 1;

  // The exporter's only writes: its own process gauges, themselves
  // instrumentation and therefore behind the same Enabled() gate.
  if (Enabled() && config_.process_gauges) {
    registry.GetGauge("obs.uptime_s")->Set(uptime_s);
    registry.GetGauge("obs.snapshot_seq")
        ->Set(static_cast<double>(seq));
    registry.GetGauge("obs.pid")->Set(static_cast<double>(pid_));
    // build_info carries the snapshot codec version this process
    // speaks — cheap provenance for mixed-version fleets.
    registry.GetGauge("obs.build_info")
        ->Set(static_cast<double>(SnapshotCodecVersion()));
  }

  ExporterSample sample;
  sample.seq = seq;
  sample.uptime_s = uptime_s;
  sample.pid = pid_;

  std::vector<MetricsSnapshot> parts;
  parts.push_back(registry.Snapshot());
  for (const auto& source : sources_) {
    MetricsSnapshot remote;
    if (source(&remote)) parts.push_back(std::move(remote));
  }
  sample.snapshot =
      parts.size() == 1 ? std::move(parts[0]) : MergeSnapshots(parts);

  seq_ = seq;
  ring_.push_back(sample);
  while (ring_.size() > std::max<size_t>(config_.ring_capacity, 1)) {
    ring_.pop_front();
  }

  if (!config_.jsonl_path.empty()) {
    if (!jsonl_opened_) {
      jsonl_.open(config_.jsonl_path,
                  std::ios::binary | std::ios::app);
      jsonl_opened_ = true;
    }
    if (jsonl_.is_open()) {
      jsonl_ << JsonlLine(sample) << '\n';
      jsonl_.flush();
    }
  }
  return sample;
}

bool MetricsExporter::Latest(ExporterSample* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return false;
  *out = ring_.back();
  return true;
}

std::vector<ExporterSample> MetricsExporter::History() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<ExporterSample>(ring_.begin(), ring_.end());
}

std::vector<CounterRate> MetricsExporter::LatestRates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterRate> rates;
  if (ring_.size() < 2) return rates;
  const ExporterSample& prev = ring_[ring_.size() - 2];
  const ExporterSample& cur = ring_.back();
  const double dt = cur.uptime_s - prev.uptime_s;
  std::map<std::string, int64_t> previous;
  for (const CounterSample& c : prev.snapshot.counters) {
    previous[c.name] = c.value;
  }
  for (const CounterSample& c : cur.snapshot.counters) {
    CounterRate rate;
    rate.name = c.name;
    auto it = previous.find(c.name);
    rate.delta = c.value - (it == previous.end() ? 0 : it->second);
    rate.per_sec = dt > 0.0 ? static_cast<double>(rate.delta) / dt : 0.0;
    rates.push_back(std::move(rate));
  }
  return rates;
}

int64_t MetricsExporter::snapshots_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

std::string MetricsExporter::JsonlLine(const ExporterSample& sample) {
  std::string out = "{\"seq\":" + std::to_string(sample.seq) +
                    ",\"uptime_s\":" + FormatSeconds(sample.uptime_s) +
                    ",\"pid\":" + std::to_string(sample.pid) +
                    ",\"metrics\":" + sample.snapshot.ToJson() + '}';
  return out;
}

}  // namespace obs
}  // namespace sim2rec
