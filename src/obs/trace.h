#ifndef SIM2REC_OBS_TRACE_H_
#define SIM2REC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"  // Enabled(), MonotonicMicros()

namespace sim2rec {
namespace obs {

/// One completed span ("ph":"X" in the Chrome trace-event format).
/// `name` must point at static storage (every S2R_TRACE_SPAN site
/// passes a string literal) — events are recorded by the million, so
/// they hold a pointer, not a copy. Up to kMaxArgs numeric arguments
/// (shard id, batch size, ...) ride along in fixed inline slots —
/// emitted into the Chrome-trace `args` map — so tagging a span never
/// allocates on the hot path. Argument names must be string literals
/// for the same lifetime reason as `name`.
struct TraceEvent {
  static constexpr int kMaxArgs = 4;

  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  const char* arg_names[kMaxArgs] = {nullptr, nullptr, nullptr, nullptr};
  double arg_values[kMaxArgs] = {0.0, 0.0, 0.0, 0.0};
  int num_args = 0;
  /// Trace id in scope when the span was constructed (see TraceIdScope);
  /// 0 = none. Links this span to the wire request / histogram exemplar
  /// carrying the same id. Exported into the Chrome-trace `args` map as
  /// a decimal string when nonzero.
  uint64_t trace_id = 0;
};

/// Current-thread trace id: the correlation key the whole observability
/// plane shares. A client sets it around a request (TraceIdScope), the
/// transport carries it in Act frames, the server restores it around
/// handling, and spans (S2R_TRACE_SPAN) plus histogram exemplars
/// (S2R_HISTOGRAM_EX) stamp it — so one id follows a request across
/// processes. 0 means "no trace in scope". Reading or setting it never
/// locks, allocates, or touches an Rng.
inline thread_local uint64_t t_current_trace_id = 0;

inline uint64_t CurrentTraceId() { return t_current_trace_id; }
inline void SetCurrentTraceId(uint64_t trace_id) {
  t_current_trace_id = trace_id;
}

/// RAII guard installing `trace_id` as the current-thread trace id and
/// restoring the previous one on destruction (nests cleanly).
class TraceIdScope {
 public:
  explicit TraceIdScope(uint64_t trace_id) : previous_(CurrentTraceId()) {
    SetCurrentTraceId(trace_id);
  }
  ~TraceIdScope() { SetCurrentTraceId(previous_); }
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  uint64_t previous_;
};

/// Process-wide scoped-span recorder, exporting Chrome trace-event
/// JSON loadable in chrome://tracing and Perfetto (ui.perfetto.dev).
///
/// Collection is off by default (spans cost one relaxed load); Start()
/// clears previous events and begins recording. Each thread appends to
/// its own buffer under a per-thread mutex, which is uncontended
/// except while an export is copying that buffer — recording threads
/// never share a lock with each other. Buffers are capped
/// (kMaxEventsPerThread); overflow drops events and counts them, so a
/// forgotten Stop() cannot eat the heap.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Discards previously collected events and begins recording.
  void Start();
  void Stop();
  bool active() const {
    return active_.load(std::memory_order_relaxed);
  }

  void RecordComplete(const TraceEvent& event);

  /// Events currently buffered across all threads / dropped on cap.
  int64_t event_count() const;
  int64_t dropped_count() const;
  /// Distinct span names seen, sorted (diagnostics and tests).
  std::vector<std::string> SpanNames() const;
  /// Copy of every buffered event across all threads, in per-thread
  /// order (diagnostics and tests — e.g. matching a span's trace_id
  /// against an exemplar's).
  std::vector<TraceEvent> EventsSnapshot() const;

  /// Serializes everything recorded so far as
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string ToChromeTraceJson() const;
  /// ToChromeTraceJson to a file; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  static constexpr size_t kMaxEventsPerThread = 1 << 20;

 private:
  struct ThreadLog {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    int64_t dropped = 0;
    int tid = 0;
  };

  TraceRecorder() = default;
  ThreadLog* LogForThisThread();

  mutable std::mutex mutex_;  // guards logs_ (registration + export)
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::atomic<bool> active_{false};
};

/// RAII span: records [construction, destruction) as one complete
/// event when the recorder is active and observability is enabled.
/// `name` — and every argument name — must be a string literal (or
/// otherwise outlive the recorder's buffered events). Up to
/// TraceEvent::kMaxArgs (name, value) pairs are captured at
/// construction into inline slots; no heap allocation either way.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!Enabled()) return;
    if (!TraceRecorder::Global().active()) return;
    name_ = name;
    trace_id_ = CurrentTraceId();
    start_us_ = MonotonicMicros();
  }
  ScopedSpan(const char* name, const char* k0, double v0) : ScopedSpan(name) {
    AddArg(k0, v0);
  }
  ScopedSpan(const char* name, const char* k0, double v0, const char* k1,
             double v1)
      : ScopedSpan(name) {
    AddArg(k0, v0);
    AddArg(k1, v1);
  }
  ScopedSpan(const char* name, const char* k0, double v0, const char* k1,
             double v1, const char* k2, double v2)
      : ScopedSpan(name) {
    AddArg(k0, v0);
    AddArg(k1, v1);
    AddArg(k2, v2);
  }
  ScopedSpan(const char* name, const char* k0, double v0, const char* k1,
             double v1, const char* k2, double v2, const char* k3, double v3)
      : ScopedSpan(name) {
    AddArg(k0, v0);
    AddArg(k1, v1);
    AddArg(k2, v2);
    AddArg(k3, v3);
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    const double end_us = MonotonicMicros();
    TraceEvent event;
    event.name = name_;
    event.ts_us = start_us_;
    event.dur_us = end_us - start_us_;
    event.num_args = num_args_;
    for (int i = 0; i < num_args_; ++i) {
      event.arg_names[i] = arg_names_[i];
      event.arg_values[i] = arg_values_[i];
    }
    event.trace_id = trace_id_;
    TraceRecorder::Global().RecordComplete(event);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void AddArg(const char* key, double value) {
    if (name_ == nullptr) return;  // span inactive: skip capture too
    if (num_args_ >= TraceEvent::kMaxArgs) return;
    arg_names_[num_args_] = key;
    arg_values_[num_args_] = value;
    ++num_args_;
  }

  const char* name_ = nullptr;
  double start_us_ = 0.0;
  uint64_t trace_id_ = 0;
  const char* arg_names_[TraceEvent::kMaxArgs] = {};
  double arg_values_[TraceEvent::kMaxArgs] = {};
  int num_args_ = 0;
};

}  // namespace obs
}  // namespace sim2rec

#define S2R_OBS_CONCAT_INNER(a, b) a##b
#define S2R_OBS_CONCAT(a, b) S2R_OBS_CONCAT_INNER(a, b)

/// Scoped trace span; name must be a string literal, conventionally
/// "<module>/<operation>" (e.g. S2R_TRACE_SPAN("ppo/update")).
/// Optionally attach up to 4 (literal-name, numeric-value) pairs that
/// surface in the Chrome-trace `args` map:
///   S2R_TRACE_SPAN("serve/batch", "shard", shard_id, "rows", n);
#define S2R_TRACE_SPAN(name, ...)             \
  ::sim2rec::obs::ScopedSpan S2R_OBS_CONCAT( \
      s2r_trace_span_, __LINE__)(name __VA_OPT__(, ) __VA_ARGS__)

#endif  // SIM2REC_OBS_TRACE_H_
