#ifndef SIM2REC_OBS_JSON_H_
#define SIM2REC_OBS_JSON_H_

#include <string>

namespace sim2rec {
namespace obs {

/// Strict JSON validity check (RFC 8259 grammar: one value, objects/
/// arrays/strings/numbers/true/false/null, \u escapes, no trailing
/// garbage). Exists so exporters can be verified without an external
/// JSON dependency; it does not build a document tree. Returns false
/// and fills `error` (when non-null) with "offset N: reason" on the
/// first violation. Nesting deeper than 256 levels is rejected.
bool JsonValidate(const std::string& text, std::string* error = nullptr);

/// Escapes `s` for use inside a JSON string (quotes, backslash,
/// control characters; non-ASCII bytes pass through untouched).
std::string JsonEscape(const std::string& s);

/// JsonEscape plus surrounding double quotes.
std::string JsonQuote(const std::string& s);

}  // namespace obs
}  // namespace sim2rec

#endif  // SIM2REC_OBS_JSON_H_
