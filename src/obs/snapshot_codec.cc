#include "obs/snapshot_codec.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace sim2rec {
namespace obs {
namespace {

constexpr uint32_t kSnapshotMagic = 0x584D3253;  // "S2MX" little-endian
constexpr uint16_t kSnapshotCodecVersion = 2;
constexpr uint16_t kExemplarSectionId = 1;

// Plausibility caps: a damaged count field must not trigger a
// multi-gigabyte reserve before the truncation is noticed.
constexpr uint32_t kMaxEntries = 1u << 20;
constexpr uint16_t kMaxNameBytes = 4096;
constexpr uint32_t kMaxBuckets = 4096;
// Merged snapshots concatenate exemplars across parts, so the cap is
// well above one histogram's kBuckets * kExemplarSlots.
constexpr uint32_t kMaxExemplarsPerHistogram = 4096;
constexpr uint8_t kMaxExemplarTagsWire = 16;

void AppendName(std::string* out, const std::string& name) {
  const uint16_t len = static_cast<uint16_t>(
      name.size() > kMaxNameBytes ? kMaxNameBytes : name.size());
  AppendU16(out, len);
  AppendBytes(out, name.data(), len);
}

bool ReadName(ByteReader* reader, std::string* name) {
  uint16_t len = 0;
  if (!reader->ReadU16(&len) || len > kMaxNameBytes) return false;
  return reader->ReadString(name, len);
}

/// Section 1 payload: exemplars grouped by histogram name.
std::string EncodeExemplarSection(const MetricsSnapshot& snapshot) {
  std::string section;
  uint32_t histograms_with_exemplars = 0;
  for (const HistogramSample& hist : snapshot.histograms) {
    if (!hist.exemplars.empty()) ++histograms_with_exemplars;
  }
  AppendU32(&section, histograms_with_exemplars);
  for (const HistogramSample& hist : snapshot.histograms) {
    if (hist.exemplars.empty()) continue;
    AppendName(&section, hist.name);
    AppendU32(&section, static_cast<uint32_t>(hist.exemplars.size()));
    for (const ExemplarSample& e : hist.exemplars) {
      AppendU8(&section,
               static_cast<uint8_t>(std::clamp(e.bucket, 0, 255)));
      AppendF64(&section, e.value);
      AppendU64(&section, e.trace_id);
      AppendU8(&section, static_cast<uint8_t>(
                             std::min<size_t>(e.tags.size(), 255)));
      for (const ExemplarTag& tag : e.tags) {
        AppendName(&section, tag.name);
        AppendF64(&section, tag.value);
      }
    }
  }
  return section;
}

bool DecodeExemplarSection(
    const void* data, size_t size,
    std::map<std::string, std::vector<ExemplarSample>>* out) {
  ByteReader reader(data, size);
  uint32_t num_histograms = 0;
  if (!reader.ReadU32(&num_histograms) || num_histograms > kMaxEntries) {
    return false;
  }
  for (uint32_t h = 0; h < num_histograms; ++h) {
    std::string name;
    uint32_t num_exemplars = 0;
    if (!ReadName(&reader, &name) || !reader.ReadU32(&num_exemplars) ||
        num_exemplars > kMaxExemplarsPerHistogram) {
      return false;
    }
    std::vector<ExemplarSample>& exemplars = (*out)[name];
    exemplars.reserve(num_exemplars);
    for (uint32_t i = 0; i < num_exemplars; ++i) {
      ExemplarSample sample;
      uint8_t bucket = 0;
      uint8_t num_tags = 0;
      if (!reader.ReadU8(&bucket) || !reader.ReadF64(&sample.value) ||
          !reader.ReadU64(&sample.trace_id) || !reader.ReadU8(&num_tags) ||
          num_tags > kMaxExemplarTagsWire) {
        return false;
      }
      sample.bucket = bucket;
      sample.tags.reserve(num_tags);
      for (uint8_t t = 0; t < num_tags; ++t) {
        ExemplarTag tag;
        if (!ReadName(&reader, &tag.name) || !reader.ReadF64(&tag.value)) {
          return false;
        }
        sample.tags.push_back(std::move(tag));
      }
      exemplars.push_back(std::move(sample));
    }
  }
  return reader.remaining() == 0;
}

/// Decodes the version-1 body (everything after magic + version) into
/// `decoded`, leaving the reader positioned at the first trailing byte.
bool DecodeBaseBody(ByteReader* reader, MetricsSnapshot* decoded) {
  uint32_t count = 0;

  if (!reader->ReadU32(&count) || count > kMaxEntries) return false;
  decoded->counters.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CounterSample sample;
    if (!ReadName(reader, &sample.name) ||
        !reader->ReadI64(&sample.value)) {
      return false;
    }
    decoded->counters.push_back(std::move(sample));
  }

  if (!reader->ReadU32(&count) || count > kMaxEntries) return false;
  decoded->gauges.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    GaugeSample sample;
    if (!ReadName(reader, &sample.name) ||
        !reader->ReadF64(&sample.value)) {
      return false;
    }
    decoded->gauges.push_back(std::move(sample));
  }

  if (!reader->ReadU32(&count) || count > kMaxEntries) return false;
  decoded->histograms.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HistogramSample sample;
    uint32_t num_buckets = 0;
    if (!ReadName(reader, &sample.name) ||
        !reader->ReadI64(&sample.count) || !reader->ReadF64(&sample.mean) ||
        !reader->ReadF64(&sample.min) || !reader->ReadF64(&sample.max) ||
        !reader->ReadF64(&sample.p50) || !reader->ReadF64(&sample.p95) ||
        !reader->ReadF64(&sample.p99) || !reader->ReadU32(&num_buckets) ||
        num_buckets > kMaxBuckets) {
      return false;
    }
    sample.buckets.resize(num_buckets);
    for (uint32_t b = 0; b < num_buckets; ++b) {
      if (!reader->ReadI64(&sample.buckets[b])) return false;
    }
    decoded->histograms.push_back(std::move(sample));
  }
  return true;
}

}  // namespace

uint16_t SnapshotCodecVersion() { return kSnapshotCodecVersion; }

std::string EncodeSnapshot(const MetricsSnapshot& snapshot) {
  bool any_exemplars = false;
  for (const HistogramSample& hist : snapshot.histograms) {
    if (!hist.exemplars.empty()) {
      any_exemplars = true;
      break;
    }
  }

  std::string out;
  AppendU32(&out, kSnapshotMagic);
  // Exemplar-free snapshots encode as byte-identical version 1, so
  // pre-exemplar readers only ever see a version they fully understand.
  AppendU16(&out, any_exemplars ? kSnapshotCodecVersion : uint16_t{1});

  AppendU32(&out, static_cast<uint32_t>(snapshot.counters.size()));
  for (const CounterSample& counter : snapshot.counters) {
    AppendName(&out, counter.name);
    AppendI64(&out, counter.value);
  }

  AppendU32(&out, static_cast<uint32_t>(snapshot.gauges.size()));
  for (const GaugeSample& gauge : snapshot.gauges) {
    AppendName(&out, gauge.name);
    AppendF64(&out, gauge.value);
  }

  AppendU32(&out, static_cast<uint32_t>(snapshot.histograms.size()));
  for (const HistogramSample& hist : snapshot.histograms) {
    AppendName(&out, hist.name);
    AppendI64(&out, hist.count);
    AppendF64(&out, hist.mean);
    AppendF64(&out, hist.min);
    AppendF64(&out, hist.max);
    AppendF64(&out, hist.p50);
    AppendF64(&out, hist.p95);
    AppendF64(&out, hist.p99);
    AppendU32(&out, static_cast<uint32_t>(hist.buckets.size()));
    for (int64_t bucket : hist.buckets) AppendI64(&out, bucket);
  }

  if (any_exemplars) {
    const std::string section = EncodeExemplarSection(snapshot);
    AppendU16(&out, kExemplarSectionId);
    AppendU32(&out, static_cast<uint32_t>(section.size()));
    out += section;
  }
  return out;
}

SnapshotDecodeStatus DecodeSnapshotEx(const void* data, size_t size,
                                      MetricsSnapshot* out,
                                      uint16_t max_version) {
  const uint16_t effective_max =
      std::min(max_version, kSnapshotCodecVersion);
  ByteReader reader(data, size);
  uint32_t magic = 0;
  uint16_t version = 0;
  if (!reader.ReadU32(&magic) || magic != kSnapshotMagic) {
    return SnapshotDecodeStatus::kBadMagic;
  }
  if (!reader.ReadU16(&version) || version < 1) {
    return SnapshotDecodeStatus::kMalformed;
  }
  // Versions beyond what this build ships are refused with the typed
  // verdict, never guessed at: the compat promise (v1 body + skippable
  // sections) is only known to hold for versions this decoder has
  // actually seen specified. Versions within [1, ours] always decode;
  // `max_version` lets a caller simulate an older reader, which
  // degrades gracefully (sections skipped, kOkIgnoredNewer).
  if (version > kSnapshotCodecVersion) {
    return SnapshotDecodeStatus::kUnsupportedVersion;
  }

  // Staged: decode into a local, commit only on full success.
  MetricsSnapshot decoded;
  if (!DecodeBaseBody(&reader, &decoded)) {
    return SnapshotDecodeStatus::kMalformed;
  }

  bool skipped_any = false;
  if (version == 1) {
    if (reader.remaining() != 0) return SnapshotDecodeStatus::kMalformed;
  } else {
    // v2+: zero or more (u16 id, u32 len, payload) trailing sections.
    std::map<std::string, std::vector<ExemplarSample>> exemplars;
    while (reader.remaining() != 0) {
      uint16_t section_id = 0;
      uint32_t section_len = 0;
      if (!reader.ReadU16(&section_id) || !reader.ReadU32(&section_len) ||
          section_len > reader.remaining()) {
        return SnapshotDecodeStatus::kMalformed;
      }
      const uint8_t* section_data =
          static_cast<const uint8_t*>(data) + (size - reader.remaining());
      if (section_id == kExemplarSectionId && effective_max >= 2) {
        if (!DecodeExemplarSection(section_data, section_len, &exemplars)) {
          return SnapshotDecodeStatus::kMalformed;
        }
      } else {
        skipped_any = true;  // unknown section (or caller opted down)
      }
      reader.Skip(section_len);
    }
    for (HistogramSample& hist : decoded.histograms) {
      auto it = exemplars.find(hist.name);
      if (it != exemplars.end()) hist.exemplars = std::move(it->second);
    }
  }

  *out = std::move(decoded);
  return (skipped_any || version > effective_max)
             ? SnapshotDecodeStatus::kOkIgnoredNewer
             : SnapshotDecodeStatus::kOk;
}

bool DecodeSnapshot(const void* data, size_t size, MetricsSnapshot* out) {
  const SnapshotDecodeStatus status = DecodeSnapshotEx(data, size, out);
  return status == SnapshotDecodeStatus::kOk ||
         status == SnapshotDecodeStatus::kOkIgnoredNewer;
}

}  // namespace obs
}  // namespace sim2rec
