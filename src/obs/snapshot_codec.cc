#include "obs/snapshot_codec.h"

#include <cstdint>
#include <utility>

#include "util/bytes.h"

namespace sim2rec {
namespace obs {
namespace {

constexpr uint32_t kSnapshotMagic = 0x584D3253;  // "S2MX" little-endian
constexpr uint16_t kSnapshotCodecVersion = 1;

// Plausibility caps: a damaged count field must not trigger a
// multi-gigabyte reserve before the truncation is noticed.
constexpr uint32_t kMaxEntries = 1u << 20;
constexpr uint16_t kMaxNameBytes = 4096;
constexpr uint32_t kMaxBuckets = 4096;

void AppendName(std::string* out, const std::string& name) {
  const uint16_t len = static_cast<uint16_t>(
      name.size() > kMaxNameBytes ? kMaxNameBytes : name.size());
  AppendU16(out, len);
  AppendBytes(out, name.data(), len);
}

bool ReadName(ByteReader* reader, std::string* name) {
  uint16_t len = 0;
  if (!reader->ReadU16(&len) || len > kMaxNameBytes) return false;
  return reader->ReadString(name, len);
}

}  // namespace

std::string EncodeSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  AppendU32(&out, kSnapshotMagic);
  AppendU16(&out, kSnapshotCodecVersion);

  AppendU32(&out, static_cast<uint32_t>(snapshot.counters.size()));
  for (const CounterSample& counter : snapshot.counters) {
    AppendName(&out, counter.name);
    AppendI64(&out, counter.value);
  }

  AppendU32(&out, static_cast<uint32_t>(snapshot.gauges.size()));
  for (const GaugeSample& gauge : snapshot.gauges) {
    AppendName(&out, gauge.name);
    AppendF64(&out, gauge.value);
  }

  AppendU32(&out, static_cast<uint32_t>(snapshot.histograms.size()));
  for (const HistogramSample& hist : snapshot.histograms) {
    AppendName(&out, hist.name);
    AppendI64(&out, hist.count);
    AppendF64(&out, hist.mean);
    AppendF64(&out, hist.min);
    AppendF64(&out, hist.max);
    AppendF64(&out, hist.p50);
    AppendF64(&out, hist.p95);
    AppendF64(&out, hist.p99);
    AppendU32(&out, static_cast<uint32_t>(hist.buckets.size()));
    for (int64_t bucket : hist.buckets) AppendI64(&out, bucket);
  }
  return out;
}

bool DecodeSnapshot(const void* data, size_t size, MetricsSnapshot* out) {
  ByteReader reader(data, size);
  uint32_t magic = 0;
  uint16_t version = 0;
  if (!reader.ReadU32(&magic) || magic != kSnapshotMagic) return false;
  if (!reader.ReadU16(&version) || version < 1 ||
      version > kSnapshotCodecVersion) {
    return false;
  }

  // Staged: decode into a local, commit only on full success.
  MetricsSnapshot decoded;
  uint32_t count = 0;

  if (!reader.ReadU32(&count) || count > kMaxEntries) return false;
  decoded.counters.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CounterSample sample;
    if (!ReadName(&reader, &sample.name) || !reader.ReadI64(&sample.value)) {
      return false;
    }
    decoded.counters.push_back(std::move(sample));
  }

  if (!reader.ReadU32(&count) || count > kMaxEntries) return false;
  decoded.gauges.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    GaugeSample sample;
    if (!ReadName(&reader, &sample.name) || !reader.ReadF64(&sample.value)) {
      return false;
    }
    decoded.gauges.push_back(std::move(sample));
  }

  if (!reader.ReadU32(&count) || count > kMaxEntries) return false;
  decoded.histograms.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HistogramSample sample;
    uint32_t num_buckets = 0;
    if (!ReadName(&reader, &sample.name) || !reader.ReadI64(&sample.count) ||
        !reader.ReadF64(&sample.mean) || !reader.ReadF64(&sample.min) ||
        !reader.ReadF64(&sample.max) || !reader.ReadF64(&sample.p50) ||
        !reader.ReadF64(&sample.p95) || !reader.ReadF64(&sample.p99) ||
        !reader.ReadU32(&num_buckets) || num_buckets > kMaxBuckets) {
      return false;
    }
    sample.buckets.resize(num_buckets);
    for (uint32_t b = 0; b < num_buckets; ++b) {
      if (!reader.ReadI64(&sample.buckets[b])) return false;
    }
    decoded.histograms.push_back(std::move(sample));
  }

  if (reader.remaining() != 0) return false;  // trailing garbage
  *out = std::move(decoded);
  return true;
}

}  // namespace obs
}  // namespace sim2rec
