#ifndef SIM2REC_OBS_EXPORTER_H_
#define SIM2REC_OBS_EXPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sim2rec {
namespace obs {

/// Configuration for MetricsExporter.
struct MetricsExporterConfig {
  /// Background snapshot period (Start()); TickOnce() ignores it.
  int interval_ms = 1000;
  /// Append-only JSONL sink, one snapshot object per line; empty
  /// disables file output. Opened at Start() / first TickOnce().
  std::string jsonl_path;
  /// In-memory ring of the most recent samples (History()).
  size_t ring_capacity = 120;
  /// Registry to snapshot; nullptr means MetricsRegistry::Global().
  MetricsRegistry* registry = nullptr;
  /// Publish the obs.* process gauges (uptime_s, snapshot_seq, pid,
  /// build_info) into the registry before each snapshot, so merged
  /// multi-process views stay attributable (see Gauge merge semantics
  /// in metrics.h). Gated on obs::Enabled() like all instrumentation.
  bool process_gauges = true;
};

/// One exporter observation: the merged snapshot plus when it was taken.
struct ExporterSample {
  int64_t seq = 0;        // 1, 2, 3, ... per exporter instance
  double uptime_s = 0.0;  // seconds since exporter construction
  int64_t pid = 0;        // exporting process (JSONL attribution)
  MetricsSnapshot snapshot;
};

/// Counter movement between the two most recent samples.
struct CounterRate {
  std::string name;
  int64_t delta = 0;
  double per_sec = 0.0;
};

/// Background observer for long-running serving loops: periodically
/// snapshots a MetricsRegistry — optionally merged with remote parts
/// pulled through AddSource (PolicyClient::FetchMetrics and friends) —
/// into (a) an append-only JSONL file a `tail -f` or offline plotter
/// can follow and (b) an in-memory ring buffer of the last N samples
/// with counter deltas/rates, which the HTTP endpoint and benches read.
///
/// Determinism contract: the exporter only *reads* metrics — it never
/// mutates a histogram or counter, never touches an Rng, and its
/// thread does nothing but snapshot + serialize + file I/O, so running
/// it cannot change what the instrumented program computes (the
/// bitwise instrumented-vs-disabled test stays the arbiter). Its only
/// writes are the obs.* process gauges, which are themselves
/// instrumentation and gated on obs::Enabled().
///
/// Thread-safety: Start/Stop/TickOnce/History/etc. may be called from
/// any thread; snapshot sources must themselves be callable off-thread
/// (PolicyClient is internally locked).
class MetricsExporter {
 public:
  explicit MetricsExporter(const MetricsExporterConfig& config);
  ~MetricsExporter();  // Stop()s the background thread if running

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Adds a remote snapshot part (e.g. wrapping FetchMetrics on an ops
  /// client). Sources returning false are skipped for that sample —
  /// a flaky remote degrades the view, never the run. Call before
  /// Start(); parts merge after the local registry in AddSource order
  /// (so remote gauges win ties — see MergeSnapshots).
  void AddSource(std::function<bool(MetricsSnapshot*)> source);

  /// Launches the background thread (no-op if already running). A
  /// final snapshot is always taken on Stop(), so short runs still get
  /// at least one sample.
  void Start();
  /// Stops the thread after one last snapshot. Idempotent.
  void Stop();
  bool running() const;

  /// Takes one snapshot synchronously on the calling thread — the
  /// deterministic alternative to Start() for tick-driven loops
  /// (bench tick hooks call this). Returns the sample it appended.
  ExporterSample TickOnce();

  /// Most recent sample; false when none taken yet.
  bool Latest(ExporterSample* out) const;
  /// Ring contents, oldest first (at most ring_capacity entries).
  std::vector<ExporterSample> History() const;
  /// Counter deltas between the two most recent samples (empty until
  /// two samples exist). Sorted by name.
  std::vector<CounterRate> LatestRates() const;
  int64_t snapshots_taken() const;

  /// The JSONL line format for one sample:
  ///   {"seq":N,"uptime_s":S,"pid":P,"metrics":{...ToJson()...}}
  static std::string JsonlLine(const ExporterSample& sample);

 private:
  void RunLoop();
  ExporterSample TakeSampleLocked();  // requires mutex_

  const MetricsExporterConfig config_;
  const double start_us_;
  const int64_t pid_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::function<bool(MetricsSnapshot*)>> sources_;
  std::deque<ExporterSample> ring_;
  std::ofstream jsonl_;
  bool jsonl_opened_ = false;
  int64_t seq_ = 0;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace sim2rec

#endif  // SIM2REC_OBS_EXPORTER_H_
