#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "obs/json.h"

namespace sim2rec {
namespace obs {
namespace {

/// Lock-free add for pre-C++20-hardware atomic<double> (portable CAS
/// loop; fetch_add on floating atomics is not universally lowered).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value < expected &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value > expected &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

/// Shard slot of the calling thread: threads get round-robin slots so
/// concurrent writers spread across cache lines deterministically per
/// thread (the value is only an aggregation detail, never observable).
int ThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(slot % Counter::kShards);
}

std::string FormatJsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

#if !defined(SIM2REC_OBS_DISABLED)
namespace internal {
std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("SIM2REC_OBS");
    const bool off =
        env != nullptr &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0);
    return !off;
  }();
  return flag;
}
}  // namespace internal
#endif

// ---------------------------------------------------------------------------
// Counter

Counter::Counter() = default;

void Counter::Add(int64_t delta) {
  shards_[ThreadShard()].value.fetch_add(delta,
                                         std::memory_order_relaxed);
}

int64_t Counter::value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// LogHistogram

int LogHistogram::BucketFor(double value) {
  if (!(value >= 1.0)) return 0;  // sub-1 values and NaN land in [0, 1)
  const int b = static_cast<int>(std::floor(std::log2(value))) + 1;
  return std::min(b, kBuckets - 1);
}

void LogHistogram::Record(double value) {
  if (!std::isfinite(value)) return;
  value = std::max(value, 0.0);
  // min/max are published before the bucket mass so a concurrent
  // Quantile that sees the sample also sees usable clamp bounds. The
  // first sample claims the 0-initialized min via CAS; losers fall
  // through to the ordinary monotone update.
  if (count_.load(std::memory_order_relaxed) == 0) {
    double zero = 0.0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  count_.fetch_add(1, std::memory_order_release);
}

void LogHistogram::RecordWithExemplar(double value, uint64_t trace_id,
                                      const char* tag_name0,
                                      double tag_value0,
                                      const char* tag_name1,
                                      double tag_value1,
                                      const char* tag_name2,
                                      double tag_value2,
                                      const char* tag_name3,
                                      double tag_value3) {
  Record(value);
  if (!std::isfinite(value)) return;
  value = std::max(value, 0.0);
  const int bucket = BucketFor(value);
  // The bucket's own (post-Record) sample count rotates the slot index:
  // later samples displace earlier ones, no Rng involved.
  const int64_t ticket = buckets_[bucket].load(std::memory_order_relaxed);
  ExemplarSlot& slot =
      exemplar_slots_[bucket][static_cast<size_t>(ticket) % kExemplarSlots];
  uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  if (seq & 1u) return;  // writer in flight: drop rather than wait
  if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    return;  // lost the claim race: drop
  }
  slot.value.store(value, std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  const char* names[kMaxExemplarTags] = {tag_name0, tag_name1, tag_name2,
                                         tag_name3};
  const double values[kMaxExemplarTags] = {tag_value0, tag_value1,
                                           tag_value2, tag_value3};
  int num_tags = 0;
  for (int i = 0; i < kMaxExemplarTags; ++i) {
    if (names[i] == nullptr) break;
    slot.tag_names[num_tags].store(names[i], std::memory_order_relaxed);
    slot.tag_values[num_tags].store(values[i], std::memory_order_relaxed);
    ++num_tags;
  }
  slot.num_tags.store(num_tags, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
}

std::vector<ExemplarSample> LogHistogram::Exemplars() const {
  std::vector<ExemplarSample> out;
  for (int b = 0; b < kBuckets; ++b) {
    for (int s = 0; s < kExemplarSlots; ++s) {
      const ExemplarSlot& slot = exemplar_slots_[b][s];
      for (int attempt = 0; attempt < 4; ++attempt) {
        const uint32_t before = slot.seq.load(std::memory_order_acquire);
        if (before == 0) break;     // never written
        if (before & 1u) continue;  // writer in flight; retry
        ExemplarSample sample;
        sample.bucket = b;
        sample.value = slot.value.load(std::memory_order_relaxed);
        sample.trace_id = slot.trace_id.load(std::memory_order_relaxed);
        const int num_tags = std::clamp(
            slot.num_tags.load(std::memory_order_relaxed), 0,
            kMaxExemplarTags);
        for (int i = 0; i < num_tags; ++i) {
          const char* name =
              slot.tag_names[i].load(std::memory_order_relaxed);
          if (name == nullptr) continue;
          sample.tags.push_back(
              {name, slot.tag_values[i].load(std::memory_order_relaxed)});
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != before) {
          continue;  // torn by a concurrent writer; retry
        }
        out.push_back(std::move(sample));
        break;
      }
    }
  }
  return out;
}

double LogHistogram::mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double LogHistogram::min_value() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double LogHistogram::max_value() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double LogHistogram::Quantile(double q) const {
  // One coherent pass over the buckets; the total derives from the
  // same loads so a concurrent Record can never push `target` past the
  // mass the interpolation walks.
  int64_t loaded[kBuckets];
  for (int b = 0; b < kBuckets; ++b) {
    loaded[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return QuantileFromLogBuckets(loaded, kBuckets, q,
                                min_.load(std::memory_order_relaxed),
                                max_.load(std::memory_order_relaxed));
}

std::vector<int64_t> LogHistogram::BucketCounts() const {
  std::vector<int64_t> out(kBuckets);
  for (int b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

double QuantileFromLogBuckets(const int64_t* buckets, int num_buckets,
                              double q, double min_clamp,
                              double max_clamp) {
  q = std::clamp(q, 0.0, 1.0);
  int64_t total = 0;
  for (int b = 0; b < num_buckets; ++b) total += buckets[b];
  if (total == 0) return 0.0;

  const double target = q * static_cast<double>(total);
  int64_t seen = 0;
  for (int b = 0; b < num_buckets; ++b) {
    if (buckets[b] == 0) continue;
    if (static_cast<double>(seen + buckets[b]) >= target) {
      // Bucket b spans [2^(b-1), 2^b); bucket 0 is [0, 1).
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      const double hi = std::ldexp(1.0, b);
      const double frac = (target - static_cast<double>(seen)) /
                          static_cast<double>(buckets[b]);
      return std::clamp(lo + frac * (hi - lo), min_clamp, max_clamp);
    }
    seen += buckets[b];
  }
  return max_clamp;
}

void LogHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& per_bucket : exemplar_slots_) {
    for (ExemplarSlot& slot : per_bucket) {
      slot.value.store(0.0, std::memory_order_relaxed);
      slot.trace_id.store(0, std::memory_order_relaxed);
      slot.num_tags.store(0, std::memory_order_relaxed);
      for (int i = 0; i < kMaxExemplarTags; ++i) {
        slot.tag_names[i].store(nullptr, std::memory_order_relaxed);
        slot.tag_values[i].store(0.0, std::memory_order_relaxed);
      }
      slot.seq.store(0, std::memory_order_release);
    }
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LogHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LogHistogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    if (!gauge->has_value()) continue;
    snapshot.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.count = histogram->count();
    sample.mean = histogram->mean();
    sample.min = histogram->min_value();
    sample.max = histogram->max_value();
    sample.p50 = histogram->Quantile(0.50);
    sample.p95 = histogram->Quantile(0.95);
    sample.p99 = histogram->Quantile(0.99);
    sample.buckets = histogram->BucketCounts();
    sample.exemplars = histogram->Exemplars();
    snapshot.histograms.push_back(sample);
  }
  return snapshot;
}

MetricsSnapshot MergeSnapshots(const std::vector<MetricsSnapshot>& parts) {
  MetricsSnapshot merged;

  std::map<std::string, int64_t> counters;
  for (const MetricsSnapshot& part : parts) {
    for (const CounterSample& c : part.counters) counters[c.name] += c.value;
  }
  for (const auto& [name, value] : counters) {
    merged.counters.push_back({name, value});
  }

  // Last part carrying a gauge wins (parts are ordered by the caller).
  std::map<std::string, double> gauges;
  for (const MetricsSnapshot& part : parts) {
    for (const GaugeSample& g : part.gauges) gauges[g.name] = g.value;
  }
  for (const auto& [name, value] : gauges) {
    merged.gauges.push_back({name, value});
  }

  std::map<std::string, HistogramSample> histograms;
  for (const MetricsSnapshot& part : parts) {
    for (const HistogramSample& h : part.histograms) {
      auto [it, inserted] = histograms.try_emplace(h.name, h);
      if (inserted) continue;
      HistogramSample& acc = it->second;
      if (h.count == 0) continue;
      if (acc.count == 0) {
        acc = h;
        continue;
      }
      // Exemplars concatenate across parts (re-sorted by bucket below).
      acc.exemplars.insert(acc.exemplars.end(), h.exemplars.begin(),
                           h.exemplars.end());
      // Exact at bucket granularity when both sides carry buckets;
      // conservative (max of parts) otherwise.
      acc.mean = (acc.mean * static_cast<double>(acc.count) +
                  h.mean * static_cast<double>(h.count)) /
                 static_cast<double>(acc.count + h.count);
      acc.count += h.count;
      acc.min = std::min(acc.min, h.min);
      acc.max = std::max(acc.max, h.max);
      if (!acc.buckets.empty() && acc.buckets.size() == h.buckets.size()) {
        for (size_t b = 0; b < acc.buckets.size(); ++b) {
          acc.buckets[b] += h.buckets[b];
        }
        acc.p50 = QuantileFromLogBuckets(
            acc.buckets.data(), static_cast<int>(acc.buckets.size()), 0.50,
            acc.min, acc.max);
        acc.p95 = QuantileFromLogBuckets(
            acc.buckets.data(), static_cast<int>(acc.buckets.size()), 0.95,
            acc.min, acc.max);
        acc.p99 = QuantileFromLogBuckets(
            acc.buckets.data(), static_cast<int>(acc.buckets.size()), 0.99,
            acc.min, acc.max);
      } else {
        acc.buckets.clear();
        acc.p50 = std::max(acc.p50, h.p50);
        acc.p95 = std::max(acc.p95, h.p95);
        acc.p99 = std::max(acc.p99, h.p99);
      }
    }
  }
  for (auto& [name, sample] : histograms) {
    std::stable_sort(sample.exemplars.begin(), sample.exemplars.end(),
                     [](const ExemplarSample& a, const ExemplarSample& b) {
                       return a.bucket < b.bucket;
                     });
    merged.histograms.push_back(std::move(sample));
  }
  return merged;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

// ---------------------------------------------------------------------------
// Snapshot export

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSample& c : counters) {
    if (!first) out += ',';
    first = false;
    out += JsonQuote(c.name) + ':' + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSample& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += JsonQuote(g.name) + ':' + FormatJsonNumber(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSample& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += JsonQuote(h.name) + ":{\"count\":" + std::to_string(h.count) +
           ",\"mean\":" + FormatJsonNumber(h.mean) +
           ",\"min\":" + FormatJsonNumber(h.min) +
           ",\"max\":" + FormatJsonNumber(h.max) +
           ",\"p50\":" + FormatJsonNumber(h.p50) +
           ",\"p95\":" + FormatJsonNumber(h.p95) +
           ",\"p99\":" + FormatJsonNumber(h.p99);
    if (!h.exemplars.empty()) {
      out += ",\"exemplars\":[";
      bool first_exemplar = true;
      for (const ExemplarSample& e : h.exemplars) {
        if (!first_exemplar) out += ',';
        first_exemplar = false;
        // Trace ids are u64 — exported as decimal strings, since a
        // JSON double cannot hold them exactly.
        out += "{\"bucket\":" + std::to_string(e.bucket) +
               ",\"value\":" + FormatJsonNumber(e.value) +
               ",\"trace_id\":\"" + std::to_string(e.trace_id) +
               "\",\"tags\":{";
        bool first_tag = true;
        for (const ExemplarTag& tag : e.tags) {
          if (!first_tag) out += ',';
          first_tag = false;
          out += JsonQuote(tag.name) + ':' + FormatJsonNumber(tag.value);
        }
        out += "}}";
      }
      out += ']';
    }
    out += '}';
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  size_t width = 0;
  for (const auto& c : counters) width = std::max(width, c.name.size());
  for (const auto& g : gauges) width = std::max(width, g.name.size());
  for (const auto& h : histograms) width = std::max(width, h.name.size());
  const int name_width = static_cast<int>(std::min<size_t>(width, 48));

  std::string out;
  char line[256];
  for (const CounterSample& c : counters) {
    std::snprintf(line, sizeof(line), "%-*s  %lld\n", name_width,
                  c.name.c_str(), static_cast<long long>(c.value));
    out += line;
  }
  for (const GaugeSample& g : gauges) {
    std::snprintf(line, sizeof(line), "%-*s  %.6g\n", name_width,
                  g.name.c_str(), g.value);
    out += line;
  }
  for (const HistogramSample& h : histograms) {
    std::snprintf(line, sizeof(line),
                  "%-*s  count=%lld mean=%.4g min=%.4g max=%.4g "
                  "p50=%.4g p95=%.4g p99=%.4g\n",
                  name_width, h.name.c_str(),
                  static_cast<long long>(h.count), h.mean, h.min, h.max,
                  h.p50, h.p95, h.p99);
    out += line;
  }
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (the
/// registry's dots in particular) becomes '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

std::string FormatPrometheusNumber(double v) {
  if (!std::isfinite(v)) return std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf");
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const CounterSample& c : counters) {
    const std::string name = PrometheusName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(c.value) + '\n';
  }
  for (const GaugeSample& g : gauges) {
    const std::string name = PrometheusName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' + FormatPrometheusNumber(g.value) + '\n';
  }
  for (const HistogramSample& h : histograms) {
    const std::string name = PrometheusName(h.name);
    out += "# TYPE " + name + " summary\n";
    out += name + "{quantile=\"0.5\"} " + FormatPrometheusNumber(h.p50) +
           '\n';
    out += name + "{quantile=\"0.95\"} " + FormatPrometheusNumber(h.p95) +
           '\n';
    out += name + "{quantile=\"0.99\"} " + FormatPrometheusNumber(h.p99) +
           '\n';
    out += name + "_sum " +
           FormatPrometheusNumber(h.mean * static_cast<double>(h.count)) +
           '\n';
    out += name + "_count " + std::to_string(h.count) + '\n';
    // Exemplars as comments: scrape-transparent, human-visible.
    for (const ExemplarSample& e : h.exemplars) {
      out += "# exemplar " + name + " bucket=" + std::to_string(e.bucket) +
             " value=" + FormatPrometheusNumber(e.value) +
             " trace_id=" + std::to_string(e.trace_id);
      for (const ExemplarTag& tag : e.tags) {
        out += ' ' + tag.name + '=' + FormatPrometheusNumber(tag.value);
      }
      out += '\n';
    }
  }
  return out;
}

double MonotonicMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace obs
}  // namespace sim2rec
