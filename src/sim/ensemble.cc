#include "sim/ensemble.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sim2rec {
namespace sim {

SimulatorEnsemble SimulatorEnsemble::Build(
    const data::LoggedDataset& dataset, int count,
    const SimulatorTrainConfig& base_config, Rng& rng) {
  S2R_CHECK(count >= 1);
  SimulatorEnsemble ensemble;
  for (int k = 0; k < count; ++k) {
    SimulatorTrainConfig config = base_config;
    config.seed = rng.NextU64();
    Rng subset_rng = rng.Split(k + 1);
    const data::LoggedDataset subset =
        dataset.SampleSubset(config.data_fraction, subset_rng);
    nn::Tensor inputs, targets;
    subset.FlattenForSimulator(&inputs, &targets);
    double nll = 0.0;
    ensemble.simulators_.push_back(
        TrainSimulator(inputs, targets, dataset.obs_dim(),
                       dataset.action_dim(), config, &nll));
    ensemble.train_nlls_.push_back(nll);
    S2R_LOG_INFO("ensemble member %d/%d trained, NLL=%.4f", k + 1, count,
                 nll);
  }
  return ensemble;
}

UserSimulator& SimulatorEnsemble::simulator(int i) {
  S2R_CHECK(i >= 0 && i < size());
  return *simulators_[i];
}

const UserSimulator& SimulatorEnsemble::simulator(int i) const {
  S2R_CHECK(i >= 0 && i < size());
  return *simulators_[i];
}

void SimulatorEnsemble::AddSimulator(
    std::unique_ptr<UserSimulator> simulator) {
  S2R_CHECK(simulator != nullptr);
  simulators_.push_back(std::move(simulator));
  train_nlls_.push_back(0.0);
}

std::vector<nn::Tensor> SimulatorEnsemble::AllMeans(
    const nn::Tensor& inputs) const {
  std::vector<nn::Tensor> means(simulators_.size());
  if (pool_ != nullptr && size() > 1) {
    pool_->ParallelFor(size(), [this, &inputs, &means](int i) {
      means[i] = simulators_[i]->Predict(inputs).mean;
    });
  } else {
    for (int i = 0; i < size(); ++i) {
      means[i] = simulators_[i]->Predict(inputs).mean;
    }
  }
  return means;
}

std::vector<double> SimulatorEnsemble::Uncertainty(
    const nn::Tensor& inputs) const {
  S2R_CHECK(size() >= 1);
  S2R_TRACE_SPAN("sim/ensemble_uncertainty");
  const std::vector<nn::Tensor> means = AllMeans(inputs);
  const int n = inputs.rows();
  std::vector<double> uncertainty(n, 0.0);
  double total_disagreement = 0.0;
  for (int r = 0; r < n; ++r) {
    double mean_of_means = 0.0;
    for (const auto& m : means) mean_of_means += m(r, 0);
    mean_of_means /= size();
    double disagreement = 0.0;
    for (const auto& m : means)
      disagreement += std::abs(m(r, 0) - mean_of_means);
    uncertainty[r] = disagreement / size();
    total_disagreement += uncertainty[r];
  }
  if (n > 0) S2R_HISTOGRAM("sim.ensemble.disagreement", total_disagreement / n);
  return uncertainty;
}

}  // namespace sim
}  // namespace sim2rec
