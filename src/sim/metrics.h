#ifndef SIM2REC_SIM_METRICS_H_
#define SIM2REC_SIM_METRICS_H_

#include <vector>

#include "data/dataset.h"
#include "sim/ensemble.h"

namespace sim2rec {
namespace sim {

/// Validation metrics of a learned user simulator against held-out
/// logged data. The paper discusses simulator fidelity qualitatively
/// (approximation vs extrapolation error, Sec. IV-C); these quantify it
/// and back the ensemble-size / uncertainty ablations.
struct SimulatorMetrics {
  /// Gaussian negative log-likelihood of the held-out feedback.
  double nll = 0.0;
  /// Root mean squared error of the predicted mean.
  double rmse = 0.0;
  /// Mean absolute error of the predicted mean.
  double mae = 0.0;
  /// Fraction of held-out targets within one predicted stddev of the
  /// mean (~0.68 for a calibrated Gaussian).
  double coverage_1sd = 0.0;
  /// Fraction within two stddevs (~0.95 when calibrated).
  double coverage_2sd = 0.0;
};

/// Evaluates one simulator on a flattened (inputs, targets) pair.
SimulatorMetrics EvaluateSimulator(const UserSimulator& simulator,
                                   const nn::Tensor& inputs,
                                   const nn::Tensor& targets);

/// Convenience: evaluates on the flattened transitions of a dataset.
SimulatorMetrics EvaluateSimulatorOnDataset(
    const UserSimulator& simulator, const data::LoggedDataset& dataset);

/// Per-member metrics plus the ensemble-mean predictor's RMSE (which
/// should beat the average individual RMSE — the variance-reduction
/// rationale for the ensemble).
struct EnsembleMetrics {
  std::vector<SimulatorMetrics> members;
  double mean_member_rmse = 0.0;
  double ensemble_mean_rmse = 0.0;
  /// Average pairwise L2 distance between member mean-predictions on
  /// the evaluation inputs: the spread of Omega'.
  double mean_pairwise_disagreement = 0.0;
};

EnsembleMetrics EvaluateEnsemble(const SimulatorEnsemble& ensemble,
                                 const data::LoggedDataset& dataset);

}  // namespace sim
}  // namespace sim2rec

#endif  // SIM2REC_SIM_METRICS_H_
