#ifndef SIM2REC_SIM_FILTERS_H_
#define SIM2REC_SIM_FILTERS_H_

#include <vector>

#include "data/dataset.h"
#include "sim/ensemble.h"

namespace sim2rec {
namespace sim {

/// Result of probing a simulator with counterfactual bonus shifts
/// (the paper's intervention test, Fig. 10): for one user, the predicted
/// order increment at each Delta-B relative to the first grid point.
struct InterventionResponse {
  int trajectory_index = -1;
  std::vector<double> response;  // one entry per delta in the grid
  double slope = 0.0;            // least-squares slope of response vs delta
};

/// Runs the intervention test for every trajectory in the dataset against
/// one simulator: bonus actions in the user's logged states are shifted
/// by each delta, the predicted feedback is averaged over the states, and
/// the result is reported relative to the first grid entry (matching
/// Fig. 10's normalization at Delta B = -0.5).
std::vector<InterventionResponse> RunInterventionTest(
    const UserSimulator& simulator, const data::LoggedDataset& dataset,
    const std::vector<double>& bonus_deltas, int bonus_action_index);

/// F_trend (Sec. IV-C): removes users whose simulated bonus elasticity
/// violates the prior "more bonus never yields fewer orders". A user is
/// dropped when the median response slope across the ensemble members is
/// <= `min_slope`. Returns the kept trajectory indices.
std::vector<int> TrendFilter(const SimulatorEnsemble& ensemble,
                             const data::LoggedDataset& dataset,
                             const std::vector<double>& bonus_deltas,
                             int bonus_action_index,
                             double min_slope = 0.0);

/// Builds the filtered dataset from kept indices.
data::LoggedDataset SelectTrajectories(const data::LoggedDataset& dataset,
                                       const std::vector<int>& keep);

/// F_exec helper: true when `action` lies inside the user's executable
/// box [low - tolerance, high + tolerance] in every dimension.
bool ActionExecutable(const data::ActionRange& range,
                      const std::vector<double>& action,
                      double tolerance = 0.02);

}  // namespace sim
}  // namespace sim2rec

#endif  // SIM2REC_SIM_FILTERS_H_
