#include "sim/sim_env.h"

#include <algorithm>

#include "obs/metrics.h"

namespace sim2rec {
namespace sim {

envs::DriverStatic StaticsFromObsRow(const nn::Tensor& obs, int row) {
  envs::DriverStatic st;
  st.skill_obs = obs(row, 0);
  st.tolerance_obs = obs(row, 1);
  st.tenure = obs(row, 2);
  st.city_signal = obs(row, 6);
  st.responsiveness_obs = obs(row, 12);
  st.tier = 0;
  for (int k = 1; k < envs::kDprTierCount; ++k) {
    if (obs(row, envs::kDprContinuousObsDim + k) >
        obs(row, envs::kDprContinuousObsDim + st.tier)) {
      st.tier = k;
    }
  }
  return st;
}

SimGroupEnv::SimGroupEnv(const data::LoggedDataset* dataset, int group_id,
                         const SimulatorEnsemble* ensemble,
                         const SimEnvConfig& config)
    : dataset_(dataset), group_id_(group_id), ensemble_(ensemble),
      config_(config) {
  S2R_CHECK(dataset != nullptr);
  S2R_CHECK(ensemble != nullptr && ensemble->size() >= 1);
  S2R_CHECK(config.rollout_users >= 1);
  S2R_CHECK(config.truncated_horizon >= 1);
  group_members_ = dataset->GroupMembers(group_id);
  S2R_CHECK_MSG(!group_members_.empty(),
                "SimGroupEnv: group has no logged trajectories");
  logged_horizon_ = dataset->trajectory(group_members_[0]).length();
}

nn::Tensor SimGroupEnv::MakeObs() const {
  const int n = num_users();
  nn::Tensor obs(n, envs::kDprObsDim);
  for (int i = 0; i < n; ++i) {
    envs::WriteDprObsRow(&obs, i, statics_[i], histories_[i], t0_ + t_,
                         logged_horizon_);
  }
  return obs;
}

nn::Tensor SimGroupEnv::Reset(Rng& rng) {
  const int n = num_users();
  selected_.resize(n);
  statics_.resize(n);
  histories_.resize(n);
  exec_ranges_.resize(n);
  done_.assign(n, 0);

  // Draw tau^r: one logged trajectory per rollout slot (with replacement
  // when the group is small).
  for (int i = 0; i < n; ++i) {
    selected_[i] = group_members_[rng.UniformInt(
        static_cast<int>(group_members_.size()))];
  }
  // Random start state from the logged data (Sec. IV-C: initial states
  // are drawn from the dataset, rollouts truncated to T_c).
  const int max_start =
      std::max(0, logged_horizon_ - config_.truncated_horizon);
  t0_ = config_.random_start_states && max_start > 0
            ? rng.UniformInt(max_start + 1)
            : 0;
  t_ = 0;

  for (int i = 0; i < n; ++i) {
    const data::UserTrajectory& traj = dataset_->trajectory(selected_[i]);
    statics_[i] = StaticsFromObsRow(traj.observations, t0_);
    histories_[i].ResetFrom(
        traj.observations(t0_, 3) * envs::kDprOrderScale,
        traj.observations(t0_, 4) * envs::kDprOrderScale,
        traj.observations(t0_, 5) * envs::kDprOrderScale,
        traj.observations(t0_, 10), traj.observations(t0_, 11));
    exec_ranges_[i] = dataset_->UserActionRange(selected_[i]);
  }
  return MakeObs();
}

envs::StepResult SimGroupEnv::Step(const nn::Tensor& actions, Rng& rng) {
  const int n = num_users();
  S2R_CHECK(actions.rows() == n && actions.cols() == envs::kDprActionDim);
  S2R_CHECK(!selected_.empty());

  envs::StepResult out;
  out.rewards.assign(n, 0.0);
  out.dones.assign(n, 0);
  last_orders_.assign(n, 0.0);
  last_costs_.assign(n, 0.0);

  // Build the (s, a) batch for the simulator with clipped actions.
  const nn::Tensor obs = MakeObs();
  nn::Tensor inputs(n, envs::kDprObsDim + envs::kDprActionDim);
  nn::Tensor clipped(n, envs::kDprActionDim);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < envs::kDprObsDim; ++c) inputs(i, c) = obs(i, c);
    for (int c = 0; c < envs::kDprActionDim; ++c) {
      clipped(i, c) = std::clamp(actions(i, c), 0.0, 1.0);
      inputs(i, envs::kDprObsDim + c) = clipped(i, c);
    }
  }

  const UserSimulator& simulator = ensemble_->simulator(active_simulator_);
  const nn::Tensor y = simulator.SampleFeedback(inputs, rng);
  std::vector<double> uncertainty;
  if (config_.uncertainty_alpha > 0.0) {
    uncertainty = ensemble_->Uncertainty(inputs);
  }

  for (int i = 0; i < n; ++i) {
    if (done_[i]) {
      out.dones[i] = 1;
      continue;
    }
    const double bonus = clipped(i, 1);
    const double difficulty = clipped(i, 0);

    // F_exec: leaving the executable action subspace ends the episode
    // with the floored reward (Sec. IV-C).
    if (config_.use_exec_filter &&
        !ActionExecutable(exec_ranges_[i], {difficulty, bonus},
                          config_.exec_tolerance)) {
      out.rewards[i] = config_.r_min / (1.0 - config_.gamma);
      out.dones[i] = 1;
      done_[i] = 1;
      S2R_COUNT("sim.f_exec.triggers", 1);
      continue;
    }

    const double orders = y(i, 0) * envs::kDprOrderScale;
    const double cost = bonus * config_.cost_factor * orders;
    last_orders_[i] = orders;
    last_costs_[i] = cost;
    double reward = orders - cost;
    if (config_.uncertainty_alpha > 0.0) {
      const double penalty = config_.uncertainty_alpha * uncertainty[i] *
                             envs::kDprOrderScale;
      reward -= penalty;
      S2R_HISTOGRAM("sim.uncertainty_penalty", penalty);
    }
    out.rewards[i] = reward;
    histories_[i].Update(orders, bonus, difficulty);
  }

  ++t_;
  out.horizon_reached = (t_ >= config_.truncated_horizon);
  out.next_obs = MakeObs();
  return out;
}

}  // namespace sim
}  // namespace sim2rec
