#include "sim/metrics.h"

#include <cmath>

namespace sim2rec {
namespace sim {
namespace {

constexpr double kLog2Pi = 1.8378770664093453;

}  // namespace

SimulatorMetrics EvaluateSimulator(const UserSimulator& simulator,
                                   const nn::Tensor& inputs,
                                   const nn::Tensor& targets) {
  S2R_CHECK(inputs.rows() == targets.rows());
  S2R_CHECK(inputs.rows() > 0);
  const FeedbackPrediction pred = simulator.Predict(inputs);
  SimulatorMetrics metrics;
  const int n = inputs.rows();
  for (int i = 0; i < n; ++i) {
    const double mean = pred.mean(i, 0);
    const double sd = pred.std(i, 0);
    const double y = targets(i, 0);
    const double err = y - mean;
    const double z = err / sd;
    metrics.nll += 0.5 * z * z + std::log(sd) + 0.5 * kLog2Pi;
    metrics.rmse += err * err;
    metrics.mae += std::abs(err);
    if (std::abs(z) <= 1.0) metrics.coverage_1sd += 1.0;
    if (std::abs(z) <= 2.0) metrics.coverage_2sd += 1.0;
  }
  metrics.nll /= n;
  metrics.rmse = std::sqrt(metrics.rmse / n);
  metrics.mae /= n;
  metrics.coverage_1sd /= n;
  metrics.coverage_2sd /= n;
  return metrics;
}

SimulatorMetrics EvaluateSimulatorOnDataset(
    const UserSimulator& simulator, const data::LoggedDataset& dataset) {
  nn::Tensor inputs, targets;
  dataset.FlattenForSimulator(&inputs, &targets);
  return EvaluateSimulator(simulator, inputs, targets);
}

EnsembleMetrics EvaluateEnsemble(const SimulatorEnsemble& ensemble,
                                 const data::LoggedDataset& dataset) {
  S2R_CHECK(ensemble.size() >= 1);
  nn::Tensor inputs, targets;
  dataset.FlattenForSimulator(&inputs, &targets);

  EnsembleMetrics metrics;
  const std::vector<nn::Tensor> means = ensemble.AllMeans(inputs);
  for (int m = 0; m < ensemble.size(); ++m) {
    metrics.members.push_back(
        EvaluateSimulator(ensemble.simulator(m), inputs, targets));
    metrics.mean_member_rmse += metrics.members.back().rmse;
  }
  metrics.mean_member_rmse /= ensemble.size();

  // Ensemble-mean predictor.
  double ens_sq = 0.0;
  for (int i = 0; i < inputs.rows(); ++i) {
    double mu = 0.0;
    for (const auto& m : means) mu += m(i, 0);
    mu /= ensemble.size();
    const double err = targets(i, 0) - mu;
    ens_sq += err * err;
  }
  metrics.ensemble_mean_rmse = std::sqrt(ens_sq / inputs.rows());

  // Pairwise member disagreement.
  int pairs = 0;
  for (int a = 0; a < ensemble.size(); ++a) {
    for (int b = a + 1; b < ensemble.size(); ++b) {
      double sq = 0.0;
      for (int i = 0; i < inputs.rows(); ++i) {
        const double d = means[a](i, 0) - means[b](i, 0);
        sq += d * d;
      }
      metrics.mean_pairwise_disagreement +=
          std::sqrt(sq / inputs.rows());
      ++pairs;
    }
  }
  if (pairs > 0) metrics.mean_pairwise_disagreement /= pairs;
  return metrics;
}

}  // namespace sim
}  // namespace sim2rec
