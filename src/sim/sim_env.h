#ifndef SIM2REC_SIM_SIM_ENV_H_
#define SIM2REC_SIM_SIM_ENV_H_

#include <vector>

#include "data/dataset.h"
#include "envs/dpr_features.h"
#include "envs/env.h"
#include "sim/ensemble.h"
#include "sim/filters.h"

namespace sim2rec {
namespace sim {

/// Configuration of the simulator-backed environment.
struct SimEnvConfig {
  /// Users drawn from the group's logged trajectories per episode.
  int rollout_users = 32;
  /// Truncated rollout horizon T_c (paper uses 5 in DPR).
  int truncated_horizon = 5;

  /// Uncertainty penalty coefficient alpha: r <- r - alpha * U(s, a),
  /// with U in raw order units. 0 disables (Sim2Rec-PE ablation).
  double uncertainty_alpha = 0.1;
  /// Whether episodes start at random logged states (true) or only at
  /// session starts (false). Random starts mitigate compounding error.
  bool random_start_states = true;

  /// F_exec: end the episode with the floored reward when the policy
  /// leaves the user's executable action box. Disabled in the
  /// Sim2Rec-EE ablation.
  bool use_exec_filter = true;
  double exec_tolerance = 0.05;
  /// Reward assigned on an F_exec violation: r_min / (1 - gamma).
  double r_min = 0.0;
  double gamma = 0.9;

  /// Platform accounting: cost = bonus * cost_factor * orders. Known to
  /// the platform, so the simulator environment may use it directly.
  double cost_factor = 0.8;
};

/// GroupBatchEnv realizing the paper's simulator transition P_{M, tau^r}
/// (Sec. III-B): the learned simulator M predicts only the user feedback
/// y; the history/statistics part of the state is updated from the
/// predicted feedback, while user, group and time features are loaded
/// from the real logged trajectory tau^r.
///
/// One instance is bound to a single group g; the active simulator
/// M_omega is swappable so the trainer can draw omega ~ p(Omega') per
/// episode (Algorithm 1, line 4).
class SimGroupEnv : public envs::GroupBatchEnv {
 public:
  SimGroupEnv(const data::LoggedDataset* dataset, int group_id,
              const SimulatorEnsemble* ensemble, const SimEnvConfig& config);

  /// Selects the active simulator M_omega by ensemble index.
  void set_active_simulator(int index) { active_simulator_ = index; }
  int active_simulator() const { return active_simulator_; }
  int group_id() const { return group_id_; }

  int num_users() const override { return config_.rollout_users; }
  int obs_dim() const override { return envs::kDprObsDim; }
  int action_dim() const override { return envs::kDprActionDim; }
  int horizon() const override { return config_.truncated_horizon; }

  nn::Tensor Reset(Rng& rng) override;
  envs::StepResult Step(const nn::Tensor& actions, Rng& rng) override;

  std::vector<double> action_low() const override { return {0.0, 0.0}; }
  std::vector<double> action_high() const override { return {1.0, 1.0}; }

  /// Raw simulated orders / platform cost per user at the last step
  /// (zero for users already done). Valid after Step().
  const std::vector<double>& last_orders() const { return last_orders_; }
  const std::vector<double>& last_costs() const { return last_costs_; }

 private:
  nn::Tensor MakeObs() const;

  const data::LoggedDataset* dataset_;
  int group_id_;
  const SimulatorEnsemble* ensemble_;
  SimEnvConfig config_;
  std::vector<int> group_members_;

  int active_simulator_ = 0;
  // Per-episode state.
  std::vector<int> selected_;                    // trajectory indices
  std::vector<envs::DriverStatic> statics_;
  std::vector<envs::DriverHistory> histories_;
  std::vector<data::ActionRange> exec_ranges_;
  std::vector<uint8_t> done_;
  std::vector<double> last_orders_;
  std::vector<double> last_costs_;
  int logged_horizon_ = 0;
  int t0_ = 0;  // logged start step of this episode
  int t_ = 0;   // steps taken within the episode
};

/// Extracts the static driver features embedded in a logged DPR
/// observation row (inverse of WriteDprObsRow for the static fields).
envs::DriverStatic StaticsFromObsRow(const nn::Tensor& obs, int row);

}  // namespace sim
}  // namespace sim2rec

#endif  // SIM2REC_SIM_SIM_ENV_H_
