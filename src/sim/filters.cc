#include "sim/filters.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace sim2rec {
namespace sim {

std::vector<InterventionResponse> RunInterventionTest(
    const UserSimulator& simulator, const data::LoggedDataset& dataset,
    const std::vector<double>& bonus_deltas, int bonus_action_index) {
  S2R_CHECK(!bonus_deltas.empty());
  S2R_CHECK(bonus_action_index >= 0 &&
            bonus_action_index < dataset.action_dim());
  const int obs_dim = dataset.obs_dim();
  const int action_dim = dataset.action_dim();

  std::vector<InterventionResponse> out;
  out.reserve(dataset.size());
  for (int idx = 0; idx < dataset.size(); ++idx) {
    const data::UserTrajectory& traj = dataset.trajectory(idx);
    const int len = traj.length();
    InterventionResponse resp;
    resp.trajectory_index = idx;
    resp.response.resize(bonus_deltas.size());

    nn::Tensor inputs(len, obs_dim + action_dim);
    for (size_t k = 0; k < bonus_deltas.size(); ++k) {
      for (int t = 0; t < len; ++t) {
        for (int c = 0; c < obs_dim; ++c)
          inputs(t, c) = traj.observations(t, c);
        for (int c = 0; c < action_dim; ++c) {
          double a = traj.actions(t, c);
          if (c == bonus_action_index) {
            a = std::clamp(a + bonus_deltas[k], 0.0, 1.0);
          }
          inputs(t, obs_dim + c) = a;
        }
      }
      const FeedbackPrediction pred = simulator.Predict(inputs);
      resp.response[k] = pred.mean.MeanAll();
    }
    // Report increments relative to the first grid point (Fig. 10).
    const double base = resp.response[0];
    for (double& v : resp.response) v -= base;
    resp.slope = LeastSquaresSlope(bonus_deltas, resp.response);
    out.push_back(std::move(resp));
  }
  return out;
}

std::vector<int> TrendFilter(const SimulatorEnsemble& ensemble,
                             const data::LoggedDataset& dataset,
                             const std::vector<double>& bonus_deltas,
                             int bonus_action_index, double min_slope) {
  S2R_CHECK(ensemble.size() >= 1);
  S2R_TRACE_SPAN("sim/trend_filter");
  // slopes[user][member]
  std::vector<std::vector<double>> slopes(
      dataset.size(), std::vector<double>(ensemble.size()));
  for (int m = 0; m < ensemble.size(); ++m) {
    const auto responses = RunInterventionTest(
        ensemble.simulator(m), dataset, bonus_deltas, bonus_action_index);
    for (int u = 0; u < dataset.size(); ++u) {
      slopes[u][m] = responses[u].slope;
    }
  }
  std::vector<int> keep;
  for (int u = 0; u < dataset.size(); ++u) {
    std::vector<double> s = slopes[u];
    std::nth_element(s.begin(), s.begin() + s.size() / 2, s.end());
    const double median = s[s.size() / 2];
    if (median > min_slope) keep.push_back(u);
  }
  S2R_COUNT("sim.f_trend.kept", static_cast<int64_t>(keep.size()));
  S2R_COUNT("sim.f_trend.dropped",
            static_cast<int64_t>(dataset.size() - keep.size()));
  return keep;
}

data::LoggedDataset SelectTrajectories(const data::LoggedDataset& dataset,
                                       const std::vector<int>& keep) {
  data::LoggedDataset out(dataset.obs_dim(), dataset.action_dim());
  for (int idx : keep) out.Add(dataset.trajectory(idx));
  return out;
}

bool ActionExecutable(const data::ActionRange& range,
                      const std::vector<double>& action,
                      double tolerance) {
  S2R_CHECK(range.low.size() == action.size());
  for (size_t c = 0; c < action.size(); ++c) {
    if (action[c] < range.low[c] - tolerance ||
        action[c] > range.high[c] + tolerance) {
      return false;
    }
  }
  return true;
}

}  // namespace sim
}  // namespace sim2rec
