#ifndef SIM2REC_SIM_ENSEMBLE_H_
#define SIM2REC_SIM_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "core/thread_pool.h"
#include "data/dataset.h"
#include "sim/user_simulator.h"

namespace sim2rec {
namespace sim {

/// The feasible parameter set Omega' of Sec. IV-C: an ensemble of user
/// simulators trained by H(D', lambda) with varied data subsets and
/// seeds. Also provides the ensemble-disagreement uncertainty U(s, a)
/// used as a reward penalty (paper Sec. V-C2:
/// U = E_i[ ||mu_i(s,a) - mu_bar(s,a)||_2 ]).
class SimulatorEnsemble {
 public:
  SimulatorEnsemble() = default;

  /// Trains `count` simulators on the dataset, each with its own seed and
  /// data subset D' (data_fraction of trajectories).
  static SimulatorEnsemble Build(const data::LoggedDataset& dataset,
                                 int count,
                                 const SimulatorTrainConfig& base_config,
                                 Rng& rng);

  int size() const { return static_cast<int>(simulators_.size()); }
  UserSimulator& simulator(int i);
  const UserSimulator& simulator(int i) const;

  /// Adds a pre-trained simulator (used by tests).
  void AddSimulator(std::unique_ptr<UserSimulator> simulator);

  /// Fans AllMeans / Uncertainty out across members on `pool` (null =>
  /// serial). Member forward passes are const and land in per-member
  /// slots, so parallel and serial results are bit-identical. The pool
  /// must outlive the ensemble.
  void set_thread_pool(core::ThreadPool* pool) { pool_ = pool; }
  core::ThreadPool* thread_pool() const { return pool_; }

  /// Mean prediction of every member: [count][N x 1].
  std::vector<nn::Tensor> AllMeans(const nn::Tensor& inputs) const;

  /// Per-row disagreement U(s, a) = mean_i |mu_i - mu_bar|.
  std::vector<double> Uncertainty(const nn::Tensor& inputs) const;

  /// Final training NLL of each member (diagnostics).
  const std::vector<double>& train_nlls() const { return train_nlls_; }

 private:
  std::vector<std::unique_ptr<UserSimulator>> simulators_;
  std::vector<double> train_nlls_;
  core::ThreadPool* pool_ = nullptr;
};

}  // namespace sim
}  // namespace sim2rec

#endif  // SIM2REC_SIM_ENSEMBLE_H_
