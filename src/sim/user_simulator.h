#ifndef SIM2REC_SIM_USER_SIMULATOR_H_
#define SIM2REC_SIM_USER_SIMULATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "util/rng.h"

namespace sim2rec {
namespace sim {

/// Gaussian prediction of user feedback for a batch of (s, a) inputs.
struct FeedbackPrediction {
  nn::Tensor mean;  // [N x 1]
  nn::Tensor std;   // [N x 1]
};

/// Data-driven user simulator M_omega: an MLP mapping (s, a) to a
/// heteroscedastic Gaussian over the user's feedback y (normalized orders
/// in DPR). This is our substitute for DEMER [Shang et al. 2019]: the
/// adversarial imitation objective is replaced by maximum-likelihood
/// behaviour cloning, which preserves the property the paper actually
/// relies on — an ensemble of *imperfect* learned models whose weights
/// omega span a feasible parameter set Omega'.
class UserSimulator : public nn::Module {
 public:
  UserSimulator(const std::string& name, int obs_dim, int action_dim,
                const std::vector<int>& hidden_dims, Rng& rng);

  int obs_dim() const { return obs_dim_; }
  int action_dim() const { return action_dim_; }
  int input_dim() const { return obs_dim_ + action_dim_; }

  /// Predicts feedback for [N x (obs+act)] inputs (no graph).
  FeedbackPrediction Predict(const nn::Tensor& inputs) const;

  /// Samples feedback values around the predicted Gaussian; results are
  /// clamped to be non-negative (orders cannot be negative).
  nn::Tensor SampleFeedback(const nn::Tensor& inputs, Rng& rng) const;

  /// Differentiable Gaussian negative log-likelihood of targets [N x 1],
  /// averaged over the batch.
  nn::Var NllLoss(nn::Tape& tape, const nn::Tensor& inputs,
                  const nn::Tensor& targets);

 private:
  /// Mean and log-std graph heads; log-std clipped to a sane band.
  void ForwardHeads(nn::Tape& tape, nn::Var x, nn::Var* mean,
                    nn::Var* log_std);

  int obs_dim_;
  int action_dim_;
  std::unique_ptr<nn::Mlp> net_;  // outputs [mean, raw_log_std]
};

/// Hyper-parameters lambda of the simulator-learning algorithm H.
struct SimulatorTrainConfig {
  std::vector<int> hidden_dims = {64, 64};
  double learning_rate = 1e-3;
  int epochs = 40;
  int batch_size = 256;
  double grad_clip = 5.0;
  /// Fraction of logged trajectories used (the D' subset of Sec. IV-C).
  double data_fraction = 0.8;
  uint64_t seed = 0;
};

/// The simulator-learning algorithm H(D', lambda): behaviour-cloning MLE
/// on a trajectory subset. Returns the trained simulator and (optionally)
/// the final training NLL via `final_nll`.
std::unique_ptr<UserSimulator> TrainSimulator(
    const nn::Tensor& inputs, const nn::Tensor& targets, int obs_dim,
    int action_dim, const SimulatorTrainConfig& config,
    double* final_nll = nullptr);

}  // namespace sim
}  // namespace sim2rec

#endif  // SIM2REC_SIM_USER_SIMULATOR_H_
