#include "sim/user_simulator.h"

#include <algorithm>
#include <cmath>

#include "nn/distributions.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace sim2rec {
namespace sim {
namespace {

constexpr double kLogStdMin = -4.0;
constexpr double kLogStdMax = 0.5;

}  // namespace

UserSimulator::UserSimulator(const std::string& name, int obs_dim,
                             int action_dim,
                             const std::vector<int>& hidden_dims, Rng& rng)
    : obs_dim_(obs_dim), action_dim_(action_dim) {
  net_ = std::make_unique<nn::Mlp>(name, obs_dim + action_dim, hidden_dims,
                                   2, rng, nn::Activation::kRelu);
  AddChild(net_.get());
}

void UserSimulator::ForwardHeads(nn::Tape& tape, nn::Var x, nn::Var* mean,
                                 nn::Var* log_std) {
  nn::Var out = net_->Forward(tape, x);
  *mean = nn::SliceColsV(out, 0, 1);
  *log_std = nn::ClipV(nn::SliceColsV(out, 1, 2), kLogStdMin, kLogStdMax);
}

FeedbackPrediction UserSimulator::Predict(const nn::Tensor& inputs) const {
  S2R_CHECK(inputs.cols() == input_dim());
  const nn::Tensor out = net_->ForwardValue(inputs);
  FeedbackPrediction pred;
  pred.mean = out.SliceCols(0, 1);
  pred.std = out.SliceCols(1, 2);
  pred.std.Apply([](double raw_log_std) {
    return std::exp(std::clamp(raw_log_std, kLogStdMin, kLogStdMax));
  });
  return pred;
}

nn::Tensor UserSimulator::SampleFeedback(const nn::Tensor& inputs,
                                         Rng& rng) const {
  const FeedbackPrediction pred = Predict(inputs);
  nn::Tensor y = pred.mean;
  for (int i = 0; i < y.size(); ++i) {
    y[i] = std::max(0.0, y[i] + rng.Normal() * pred.std[i]);
  }
  return y;
}

nn::Var UserSimulator::NllLoss(nn::Tape& tape, const nn::Tensor& inputs,
                               const nn::Tensor& targets) {
  S2R_CHECK(inputs.cols() == input_dim());
  S2R_CHECK(targets.rows() == inputs.rows() && targets.cols() == 1);
  nn::Var x = tape.Constant(inputs);
  nn::Var mean, log_std;
  ForwardHeads(tape, x, &mean, &log_std);
  nn::DiagGaussian dist{mean, log_std};
  return nn::NegV(nn::MeanV(dist.LogProb(targets)));
}

std::unique_ptr<UserSimulator> TrainSimulator(
    const nn::Tensor& inputs, const nn::Tensor& targets, int obs_dim,
    int action_dim, const SimulatorTrainConfig& config,
    double* final_nll) {
  S2R_CHECK(inputs.rows() == targets.rows());
  S2R_CHECK(inputs.rows() > 0);
  S2R_CHECK(obs_dim + action_dim == inputs.cols());
  Rng rng(config.seed);

  auto simulator = std::make_unique<UserSimulator>(
      "usersim", obs_dim, action_dim, config.hidden_dims, rng);
  nn::Adam optimizer(simulator->Parameters(), config.learning_rate);

  const int n = inputs.rows();
  const int batch = std::min(config.batch_size, n);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<int> order = rng.Permutation(n);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int start = 0; start + batch <= n; start += batch) {
      nn::Tensor bx(batch, inputs.cols());
      nn::Tensor by(batch, 1);
      for (int k = 0; k < batch; ++k) {
        bx.SetRow(k, inputs.Row(order[start + k]));
        by(k, 0) = targets(order[start + k], 0);
      }
      nn::Tape tape;
      nn::Var loss = simulator->NllLoss(tape, bx, by);
      optimizer.ZeroGrad();
      tape.Backward(loss);
      nn::ClipGradNorm(simulator->Parameters(), config.grad_clip);
      optimizer.Step();
      epoch_loss += loss.value()(0, 0);
      ++batches;
    }
    last_loss = batches > 0 ? epoch_loss / batches : 0.0;
  }
  if (final_nll != nullptr) *final_nll = last_loss;
  return simulator;
}

}  // namespace sim
}  // namespace sim2rec
