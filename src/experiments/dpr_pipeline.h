#ifndef SIM2REC_EXPERIMENTS_DPR_PIPELINE_H_
#define SIM2REC_EXPERIMENTS_DPR_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/factories.h"
#include "core/sim2rec_trainer.h"
#include "data/generation.h"
#include "sim/sim_env.h"

namespace sim2rec {
namespace experiments {

/// Configuration of the full DPR offline pipeline (Sec. V-C), scaled
/// down from the paper (15 simulators, 120000-sample batches) to CPU
/// scale (defaults below).
struct DprPipelineConfig {
  envs::DprConfig world;  // 5 cities x 40 drivers, horizon 14 by default
  int sessions_per_city = 3;
  double train_fraction = 0.8;

  /// Size of the simulator ensemble Omega' and how many of its members
  /// are used for training; the remainder are the held-out deployment
  /// simulators (SimA, SimB, SimC in the paper).
  int ensemble_size = 8;
  int train_simulators = 5;
  sim::SimulatorTrainConfig sim_train = [] {
    sim::SimulatorTrainConfig config;
    config.epochs = 30;
    return config;
  }();

  /// Simulator-environment settings (T_c = 5 as in the paper).
  sim::SimEnvConfig sim_env = [] {
    sim::SimEnvConfig config;
    config.uncertainty_alpha = 0.3;
    config.rollout_users = 48;
    return config;
  }();

  /// F_trend intervention grid over the bonus action.
  std::vector<double> trend_deltas = {-0.2, -0.1, 0.0, 0.1, 0.2};
  bool apply_trend_filter = true;

  /// Attach the global thread pool (sized by SIM2REC_THREADS) to the
  /// ensemble so per-member predictions for U(s, a) fan out in
  /// parallel. Bit-identical to serial in either case.
  bool parallel_ensemble = true;

  uint64_t seed = 123;
};

/// Everything the DPR experiments operate on. Building it runs:
/// world synthesis -> behaviour-policy logging -> user split ->
/// ensemble training (H over subsets/seeds) -> F_trend filtering ->
/// SADAE set extraction.
struct DprPipeline {
  DprPipelineConfig config;
  std::unique_ptr<envs::DprWorld> world;
  data::LoggedDataset dataset{0, 0};
  data::LoggedDataset train_data{0, 0};
  data::LoggedDataset test_data{0, 0};
  sim::SimulatorEnsemble ensemble;
  std::vector<int> train_sim_indices;
  std::vector<int> heldout_sim_indices;
  /// Training data after F_trend (equals train_data when the filter is
  /// disabled).
  data::LoggedDataset filtered_train{0, 0};
  std::vector<nn::Tensor> sadae_sets;  // from the (filtered) train data
};

DprPipeline BuildDprPipeline(const DprPipelineConfig& config);

/// Ablation / variant switches for policy training on the pipeline
/// (Tab. III): Sim2Rec-PE drops the prediction-error guards
/// (uncertainty penalty + random truncated starts); Sim2Rec-EE drops the
/// extrapolation-error guards (F_trend + F_exec).
struct DprTrainOptions {
  baselines::AgentVariant variant = baselines::AgentVariant::kSim2Rec;
  bool prediction_error_guards = true;   // false => Sim2Rec-PE
  bool extrapolation_error_guards = true;  // false => Sim2Rec-EE
  int iterations = 150;
  int eval_every = 15;
  rl::PpoConfig ppo = [] {
    rl::PpoConfig config;
    config.gamma = 0.9;          // paper Table II (DPR column)
    config.reward_scale = 0.1;   // raw order-unit rewards -> O(1)
    config.learning_rate = 1e-3;
    config.epochs = 6;
    return config;
  }();
  // Agent sizes (scaled from Table II DPR column).
  int lstm_hidden = 32;
  std::vector<int> f_hidden = {32};
  int f_out = 8;
  std::vector<int> policy_hidden = {64, 64};
  std::vector<int> value_hidden = {64, 64};
  int sadae_latent = 8;
  std::vector<int> sadae_hidden = {64, 64};
  int sadae_pretrain_epochs = 15;
  /// Parallel rollout engine (see core::TrainLoopConfig): 0 = legacy
  /// serial loop, >= 1 = engine threads, -1 = SIM2REC_THREADS.
  int parallelism = 0;
  /// (Simulator-draw x group) shards per iteration under the engine.
  int rollout_shards = 1;
  /// When non-empty, export the trained agent as a serving bundle
  /// (serve::SaveCheckpoint) into this directory after the final
  /// iteration — and every `checkpoint_every` iterations when > 0.
  std::string export_checkpoint_dir;
  int checkpoint_every = 0;
  /// When non-empty, per-iteration training metrics are streamed to
  /// `<export_metrics_path>.jsonl` and `.csv` as they are produced
  /// (flushed per row — a killed run keeps its partial history).
  std::string export_metrics_path;
  uint64_t seed = 0;
};

/// A trained DPR policy with everything needed to evaluate it.
struct DprTrainedPolicy {
  std::unique_ptr<sadae::Sadae> sadae_model;
  std::unique_ptr<core::ContextAgent> agent;
  std::vector<core::IterationLog> logs;
};

/// Trains a variant on the pipeline's training simulators/groups and
/// returns the trained agent. The evaluator (when eval_every > 0) probes
/// the first held-out simulator.
DprTrainedPolicy TrainDprPolicy(const DprPipeline& pipeline,
                                const DprTrainOptions& options);

/// Builds an evaluation environment on a specific ensemble member: full
/// logged horizon, session starts, no uncertainty penalty, no F_exec —
/// a plain "deploy in simulator omega" environment.
std::unique_ptr<sim::SimGroupEnv> MakeEvalSimEnv(
    const DprPipeline& pipeline, const data::LoggedDataset& data,
    int group_id, int simulator_index, int rollout_users = 0);

/// Mean per-driver-step orders and cost of a policy rolled out in an
/// ensemble member across every group of `data` (Tab. III quantities).
struct OrdersAndCost {
  double orders_per_step = 0.0;
  double cost_per_step = 0.0;
  double reward_per_step = 0.0;
};
/// `policy_fn(obs) -> actions`; pass {} to use the logged behaviour
/// policy pi_e.
OrdersAndCost EvaluateOrdersAndCost(
    const DprPipeline& pipeline, const data::LoggedDataset& data,
    int simulator_index,
    const std::function<nn::Tensor(const nn::Tensor&)>& policy_fn,
    Rng& rng, int episodes_per_group = 2);

/// Expected cumulative reward per driver of an agent deployed in an
/// ensemble member, averaged over groups (Tab. IV metric, normalized by
/// kDprOrderScale * horizon for readability).
double EvaluateAgentOnSimulator(const DprPipeline& pipeline,
                                const data::LoggedDataset& data,
                                int simulator_index, rl::Agent& agent,
                                Rng& rng, int episodes_per_group = 2);

/// Same metric for a stateless policy function.
double EvaluatePolicyFnOnSimulator(
    const DprPipeline& pipeline, const data::LoggedDataset& data,
    int simulator_index,
    const std::function<nn::Tensor(const nn::Tensor&)>& policy_fn,
    Rng& rng, int episodes_per_group = 2);

}  // namespace experiments
}  // namespace sim2rec

#endif  // SIM2REC_EXPERIMENTS_DPR_PIPELINE_H_
