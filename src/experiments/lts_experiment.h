#ifndef SIM2REC_EXPERIMENTS_LTS_EXPERIMENT_H_
#define SIM2REC_EXPERIMENTS_LTS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/factories.h"
#include "core/sim2rec_trainer.h"
#include "envs/lts_env.h"

namespace sim2rec {
namespace experiments {

/// Scaled-down counterpart of the paper's LTS experiment settings
/// (Table II: horizon 140, batch 30000, 750 users — reduced to single-
/// core scale while preserving the task structure).
struct LtsExperimentConfig {
  int num_users = 48;
  int horizon = 40;
  int iterations = 120;
  int eval_every = 10;
  int eval_episodes = 2;

  /// Per-user gap range (LTS3-beta tasks); 0 for LTS1-LTS3.
  double omega_u_range = 0.0;
  /// The "unlimited-user" simulator setting of Fig. 7b: user parameters
  /// are re-drawn every episode.
  bool resample_users = false;

  // Agent sizes (scaled from Table II).
  int lstm_hidden = 16;
  std::vector<int> f_hidden = {16};
  int f_out = 6;
  std::vector<int> policy_hidden = {32, 32};
  std::vector<int> value_hidden = {32, 32};

  // SADAE (scaled from Table II: latent 5).
  int sadae_latent = 4;
  std::vector<int> sadae_hidden = {32, 32};
  int sadae_pretrain_epochs = 30;

  rl::PpoConfig ppo;

  /// Parallel rollout engine (see core::TrainLoopConfig): 0 = legacy
  /// serial loop, >= 1 = engine with that many threads, -1 =
  /// SIM2REC_THREADS. Results are thread-count invariant for any
  /// non-zero setting.
  int parallelism = 0;
  /// Training envs rolled out per iteration when the engine is active.
  int rollout_shards = 1;

  /// When non-empty, the trained agent is exported as a serving bundle
  /// (serve::SaveCheckpoint) into this directory after the final
  /// iteration — and every `checkpoint_every` iterations when > 0.
  std::string export_checkpoint_dir;
  int checkpoint_every = 0;

  /// When non-empty, per-iteration training metrics are streamed to
  /// `<export_metrics_path>.jsonl` and `.csv` as they are produced
  /// (flushed per row — a killed run keeps its partial history).
  std::string export_metrics_path;

  uint64_t seed = 0;
};

/// One training run's deployed-performance trace.
struct LtsRunResult {
  std::vector<int> eval_iterations;
  std::vector<double> eval_returns;  // on the target environment omega*=0
  double final_return = 0.0;
};

/// Collects SADAE training sets (per-step observation batches) from a
/// list of LTS environments under a uniformly random policy.
std::vector<nn::Tensor> CollectLtsStateSets(
    const std::vector<double>& omegas, const LtsExperimentConfig& config,
    Rng& rng);

/// Trains one variant against the simulator set {LtsEnv(omega_g)} and
/// periodically evaluates zero-shot on the target environment
/// omega* = 0. For DIRECT a single simulator (first omega) is used; for
/// the upper bound the target environment itself is the training set.
LtsRunResult RunLtsVariant(baselines::AgentVariant variant,
                           const std::vector<double>& train_omegas,
                           const LtsExperimentConfig& config);

}  // namespace experiments
}  // namespace sim2rec

#endif  // SIM2REC_EXPERIMENTS_LTS_EXPERIMENT_H_
