#include "experiments/checkpoint_export.h"

#include <cstdio>
#include <utility>

#include "util/logging.h"

namespace sim2rec {
namespace experiments {

CheckpointExportObserver::CheckpointExportObserver(
    std::string dir, core::ContextAgent* agent,
    serve::CheckpointMetadata metadata, bool generation_subdirs)
    : dir_(std::move(dir)), agent_(agent), metadata_(std::move(metadata)),
      generation_subdirs_(generation_subdirs),
      last_generation_(metadata_.generation) {}

void CheckpointExportObserver::OnCheckpoint(int iteration) {
  serve::CheckpointMetadata metadata = metadata_;
  metadata.train_iterations = iteration + 1;
  std::string dir = dir_;
  if (generation_subdirs_) {
    metadata.generation = last_generation_ + 1;
    char name[32];
    std::snprintf(name, sizeof(name), "gen-%06llu",
                  static_cast<unsigned long long>(metadata.generation));
    dir += std::string("/") + name;
  }
  if (!serve::SaveCheckpoint(dir, *agent_, metadata)) {
    S2R_LOG_WARN("checkpoint export to '%s' failed", dir.c_str());
    return;
  }
  if (generation_subdirs_) last_generation_ = metadata.generation;
}

}  // namespace experiments
}  // namespace sim2rec
