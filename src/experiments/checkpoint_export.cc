#include "experiments/checkpoint_export.h"

#include <utility>

#include "util/logging.h"

namespace sim2rec {
namespace experiments {

CheckpointExportObserver::CheckpointExportObserver(
    std::string dir, core::ContextAgent* agent,
    serve::CheckpointMetadata metadata)
    : dir_(std::move(dir)), agent_(agent), metadata_(std::move(metadata)) {}

void CheckpointExportObserver::OnCheckpoint(int iteration) {
  serve::CheckpointMetadata metadata = metadata_;
  metadata.train_iterations = iteration + 1;
  if (!serve::SaveCheckpoint(dir_, *agent_, metadata)) {
    S2R_LOG_WARN("checkpoint export to '%s' failed", dir_.c_str());
  }
}

}  // namespace experiments
}  // namespace sim2rec
