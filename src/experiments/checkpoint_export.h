#ifndef SIM2REC_EXPERIMENTS_CHECKPOINT_EXPORT_H_
#define SIM2REC_EXPERIMENTS_CHECKPOINT_EXPORT_H_

#include <string>

#include "core/context_agent.h"
#include "core/training_observer.h"
#include "serve/checkpoint.h"

namespace sim2rec {
namespace experiments {

/// TrainingObserver that exports a serving bundle (serve::SaveCheckpoint)
/// on every OnCheckpoint callback: the bundle's train_iterations metadata
/// is `iteration + 1` so a bundle written after iteration k reads
/// "trained for k+1 iterations". Failures log a warning and keep
/// training (checkpoint export is best-effort by design). The agent must
/// outlive the observer. Shared by the LTS and DPR pipelines.
class CheckpointExportObserver : public core::TrainingObserver {
 public:
  CheckpointExportObserver(std::string dir, core::ContextAgent* agent,
                           serve::CheckpointMetadata metadata);

  void OnCheckpoint(int iteration) override;

 private:
  std::string dir_;
  core::ContextAgent* agent_;  // SaveCheckpoint needs mutable access
  serve::CheckpointMetadata metadata_;
};

}  // namespace experiments
}  // namespace sim2rec

#endif  // SIM2REC_EXPERIMENTS_CHECKPOINT_EXPORT_H_
