#ifndef SIM2REC_EXPERIMENTS_CHECKPOINT_EXPORT_H_
#define SIM2REC_EXPERIMENTS_CHECKPOINT_EXPORT_H_

#include <cstdint>
#include <string>

#include "core/context_agent.h"
#include "core/training_observer.h"
#include "serve/checkpoint.h"

namespace sim2rec {
namespace experiments {

/// TrainingObserver that exports a serving bundle (serve::SaveCheckpoint)
/// on every OnCheckpoint callback: the bundle's train_iterations metadata
/// is `iteration + 1` so a bundle written after iteration k reads
/// "trained for k+1 iterations". Failures log a warning and keep
/// training (checkpoint export is best-effort by design). The agent must
/// outlive the observer. Shared by the LTS and DPR pipelines.
///
/// Two export layouts:
///  * Default (generation_subdirs = false): every export overwrites
///    `dir` in place — the original single-bundle behaviour, metadata
///    passed through untouched.
///  * Generation mode (generation_subdirs = true): export k writes a
///    fresh bundle to `dir/gen-NNNNNN` with a monotonically increasing
///    `generation` manifest key, starting above metadata.generation.
///    This is the producer side of the continuous-learning loop: point
///    a serve::CheckpointWatcher at `dir` and it hot-swaps to each new
///    generation as training publishes it (the staged manifest rename
///    in SaveCheckpoint makes the publish atomic).
class CheckpointExportObserver : public core::TrainingObserver {
 public:
  CheckpointExportObserver(std::string dir, core::ContextAgent* agent,
                           serve::CheckpointMetadata metadata,
                           bool generation_subdirs = false);

  void OnCheckpoint(int iteration) override;

  /// Generation of the last bundle written (0 before the first export
  /// or outside generation mode).
  uint64_t last_generation() const { return last_generation_; }

 private:
  std::string dir_;
  core::ContextAgent* agent_;  // SaveCheckpoint needs mutable access
  serve::CheckpointMetadata metadata_;
  bool generation_subdirs_;
  uint64_t last_generation_ = 0;
};

}  // namespace experiments
}  // namespace sim2rec

#endif  // SIM2REC_EXPERIMENTS_CHECKPOINT_EXPORT_H_
