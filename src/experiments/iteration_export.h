#ifndef SIM2REC_EXPERIMENTS_ITERATION_EXPORT_H_
#define SIM2REC_EXPERIMENTS_ITERATION_EXPORT_H_

#include <fstream>
#include <memory>
#include <string>

#include "core/training_observer.h"
#include "util/csv.h"

namespace sim2rec {
namespace experiments {

/// Streams core::IterationLog records to disk as they are produced:
/// `<path_stem>.jsonl` (one strict-JSON object per line, NaN exported
/// as null) and `<path_stem>.csv` (util::CsvWriter columns). Every
/// Write flushes both files, so a killed training run keeps the full
/// history up to its last completed iteration. A core::TrainingObserver
/// — install via core::ZeroShotTrainer::set_observer (directly or
/// inside a CompositeObserver); the exporter must outlive the Train()
/// call.
class IterationLogExporter : public core::TrainingObserver {
 public:
  /// Creates parent directories of `path_stem` as needed.
  explicit IterationLogExporter(const std::string& path_stem);

  /// False when either output file could not be created (Write becomes
  /// a no-op; a warning was logged).
  bool ok() const { return ok_; }

  void Write(const core::IterationLog& log);
  void OnIteration(const core::IterationLog& log) override { Write(log); }

  std::string jsonl_path() const { return jsonl_path_; }
  std::string csv_path() const { return csv_path_; }

 private:
  std::string jsonl_path_;
  std::string csv_path_;
  std::ofstream jsonl_;
  std::unique_ptr<CsvWriter> csv_;
  bool ok_ = false;
};

}  // namespace experiments
}  // namespace sim2rec

#endif  // SIM2REC_EXPERIMENTS_ITERATION_EXPORT_H_
