#include "experiments/iteration_export.h"

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "util/logging.h"

namespace sim2rec {
namespace experiments {
namespace {

/// Strict-JSON number: NaN/inf (eval_return and sadae_loss on
/// iterations without a sample) become null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

IterationLogExporter::IterationLogExporter(const std::string& path_stem)
    : jsonl_path_(path_stem + ".jsonl"), csv_path_(path_stem + ".csv") {
  const std::filesystem::path parent =
      std::filesystem::path(path_stem).parent_path();
  std::error_code ec;
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);

  jsonl_.open(jsonl_path_, std::ios::trunc);
  csv_ = std::make_unique<CsvWriter>(
      csv_path_,
      std::vector<std::string>{"iteration", "train_return", "eval_return",
                               "policy_loss", "value_loss", "entropy",
                               "approx_kl", "sadae_loss"});
  ok_ = jsonl_.good() && csv_->ok();
  if (!ok_) {
    S2R_LOG_WARN("iteration log export to '%s.{jsonl,csv}' failed to open",
                 path_stem.c_str());
  }
}

void IterationLogExporter::Write(const core::IterationLog& log) {
  if (!ok_) return;
  jsonl_ << "{\"iteration\":" << log.iteration
         << ",\"train_return\":" << JsonNumber(log.train_return)
         << ",\"eval_return\":" << JsonNumber(log.eval_return)
         << ",\"policy_loss\":" << JsonNumber(log.policy_loss)
         << ",\"value_loss\":" << JsonNumber(log.value_loss)
         << ",\"entropy\":" << JsonNumber(log.entropy)
         << ",\"approx_kl\":" << JsonNumber(log.approx_kl)
         << ",\"sadae_loss\":" << JsonNumber(log.sadae_loss) << "}\n";
  jsonl_.flush();
  csv_->WriteRow({static_cast<double>(log.iteration), log.train_return,
                  log.eval_return, log.policy_loss, log.value_loss,
                  log.entropy, log.approx_kl, log.sadae_loss});
  csv_->Flush();
}

}  // namespace experiments
}  // namespace sim2rec
