#include "experiments/lts_experiment.h"

#include <algorithm>

#include "data/behavior_policy.h"
#include "experiments/checkpoint_export.h"
#include "experiments/iteration_export.h"
#include "sadae/sadae_trainer.h"
#include "serve/checkpoint.h"
#include "util/logging.h"

namespace sim2rec {
namespace experiments {
namespace {

envs::LtsConfig MakeEnvConfig(double omega_g,
                              const LtsExperimentConfig& config,
                              uint64_t user_seed) {
  envs::LtsConfig env_config;
  env_config.num_users = config.num_users;
  env_config.horizon = config.horizon;
  env_config.omega_g = omega_g;
  env_config.omega_u_range = config.omega_u_range;
  env_config.resample_users_on_reset = config.resample_users;
  env_config.user_seed = user_seed;
  return env_config;
}

}  // namespace

std::vector<nn::Tensor> CollectLtsStateSets(
    const std::vector<double>& omegas, const LtsExperimentConfig& config,
    Rng& rng) {
  std::vector<nn::Tensor> sets;
  for (double omega : omegas) {
    envs::LtsEnv env(MakeEnvConfig(omega, config, rng.NextU64()));
    nn::Tensor obs = env.Reset(rng);
    sets.push_back(obs);
    for (int t = 0; t < config.horizon; ++t) {
      const nn::Tensor actions =
          data::RandomLtsActions(env.num_users(), rng);
      const envs::StepResult step = env.Step(actions, rng);
      sets.push_back(step.next_obs);
      if (step.horizon_reached) break;
    }
  }
  return sets;
}

LtsRunResult RunLtsVariant(baselines::AgentVariant variant,
                           const std::vector<double>& train_omegas,
                           const LtsExperimentConfig& config) {
  S2R_CHECK(!train_omegas.empty());
  Rng rng(config.seed);

  // --- Training environment set (the "simulator set"). ---
  std::vector<std::unique_ptr<envs::LtsEnv>> owned_envs;
  std::vector<envs::GroupBatchEnv*> training_envs;
  const bool is_direct = variant == baselines::AgentVariant::kDirect;
  const bool is_upper = variant == baselines::AgentVariant::kUpperBound;
  std::vector<double> omegas = train_omegas;
  if (is_direct) {
    // DIRECT trusts one simulator; draw one from the set.
    omegas = {train_omegas[rng.UniformInt(
        static_cast<int>(train_omegas.size()))]};
  } else if (is_upper) {
    omegas = {0.0};  // the target environment itself
  }
  for (double omega : omegas) {
    owned_envs.push_back(std::make_unique<envs::LtsEnv>(
        MakeEnvConfig(omega, config, rng.NextU64())));
    training_envs.push_back(owned_envs.back().get());
  }

  // --- Target (deployment) environment: omega* = 0. ---
  envs::LtsEnv target_env(MakeEnvConfig(0.0, config, rng.NextU64()));

  // --- Agent (+ SADAE for Sim2Rec). ---
  core::ContextAgentConfig agent_config = baselines::MakeAgentConfig(
      variant, envs::kLtsObsDim, /*action_dim=*/1);
  agent_config.lstm_hidden = config.lstm_hidden;
  agent_config.f_hidden = config.f_hidden;
  agent_config.f_out = config.f_out;
  agent_config.policy_hidden = config.policy_hidden;
  agent_config.value_hidden = config.value_hidden;
  agent_config.action_bias = {0.5};  // center of the [0, 1] action box

  std::unique_ptr<sadae::Sadae> sadae_model;
  std::unique_ptr<sadae::SadaeTrainer> sadae_trainer;
  std::vector<nn::Tensor> sadae_sets;
  if (variant == baselines::AgentVariant::kSim2Rec) {
    sadae::SadaeConfig sadae_config;
    sadae_config.state_dim = envs::kLtsObsDim;  // state-only (Sec. V-B2)
    sadae_config.latent_dim = config.sadae_latent;
    sadae_config.encoder_hidden = config.sadae_hidden;
    sadae_config.decoder_hidden = config.sadae_hidden;
    Rng sadae_rng = rng.Split(1);
    sadae_model = std::make_unique<sadae::Sadae>(sadae_config, sadae_rng);

    sadae_sets = CollectLtsStateSets(omegas, config, sadae_rng);
    sadae::SadaeTrainConfig sadae_train;
    sadae_train.learning_rate = 2e-3;
    sadae_trainer = std::make_unique<sadae::SadaeTrainer>(
        sadae_model.get(), sadae_train);
    for (int epoch = 0; epoch < config.sadae_pretrain_epochs; ++epoch) {
      sadae_trainer->TrainEpoch(sadae_sets, sadae_rng);
    }
  }

  Rng agent_rng = rng.Split(2);
  core::ContextAgent agent(agent_config, sadae_model.get(), agent_rng);

  // --- Training loop. ---
  core::TrainLoopConfig loop;
  loop.iterations = config.iterations;
  loop.eval_every = config.eval_every;
  loop.eval_episodes = config.eval_episodes;
  loop.ppo = config.ppo;
  loop.sadae_steps_per_iteration = sadae_model != nullptr ? 1 : 0;
  loop.parallelism = config.parallelism;
  loop.rollout_shards = config.rollout_shards;
  loop.checkpoint_every = config.checkpoint_every;
  loop.seed = rng.NextU64();

  core::ZeroShotTrainer trainer(&agent, training_envs, loop,
                                sadae_trainer.get(),
                                sadae_model != nullptr ? &sadae_sets
                                                       : nullptr);
  core::CompositeObserver observers;
  if (!config.export_checkpoint_dir.empty()) {
    serve::CheckpointMetadata metadata;
    metadata.variant = baselines::AgentVariantName(variant);
    metadata.seed = config.seed;
    observers.AddOwned(std::make_unique<CheckpointExportObserver>(
        config.export_checkpoint_dir, &agent, metadata));
  }
  if (!config.export_metrics_path.empty()) {
    observers.AddOwned(
        std::make_unique<IterationLogExporter>(config.export_metrics_path));
  }
  if (!observers.empty()) trainer.set_observer(&observers);

  const int eval_episodes = config.eval_episodes;
  trainer.set_evaluator(
      [&target_env, eval_episodes](rl::Agent& eval_agent, Rng& eval_rng) {
        return rl::EvaluateAgentReturn(target_env, eval_agent,
                                       eval_episodes, eval_rng,
                                       /*deterministic=*/true);
      });

  const std::vector<core::IterationLog> logs = trainer.Train();

  LtsRunResult result;
  for (const auto& log : logs) {
    if (log.has_eval()) {
      result.eval_iterations.push_back(log.iteration);
      result.eval_returns.push_back(log.eval_return);
    }
  }
  S2R_CHECK(!result.eval_returns.empty());
  result.final_return = result.eval_returns.back();
  return result;
}

}  // namespace experiments
}  // namespace sim2rec
