#include "experiments/dpr_pipeline.h"

#include <algorithm>
#include <map>

#include "data/behavior_policy.h"
#include "experiments/checkpoint_export.h"
#include "experiments/iteration_export.h"
#include "sadae/sadae_trainer.h"
#include "serve/checkpoint.h"
#include "util/logging.h"

namespace sim2rec {
namespace experiments {
namespace {

/// Ensures no group was completely emptied by F_trend: groups with
/// fewer than `min_per_group` survivors fall back to all their
/// trajectories.
data::LoggedDataset RepairGroups(const data::LoggedDataset& original,
                                 const data::LoggedDataset& filtered,
                                 int min_per_group) {
  data::LoggedDataset out = filtered;
  for (int g : original.GroupIds()) {
    if (static_cast<int>(filtered.GroupMembers(g).size()) >=
        min_per_group) {
      continue;
    }
    S2R_LOG_WARN("F_trend nearly emptied group %d; restoring it", g);
    for (int idx : original.GroupMembers(g)) {
      bool already = false;
      for (int kept : filtered.GroupMembers(g)) {
        if (filtered.trajectory(kept).user_id ==
            original.trajectory(idx).user_id) {
          already = true;
          break;
        }
      }
      if (!already) out.Add(original.trajectory(idx));
    }
  }
  return out;
}

}  // namespace

DprPipeline BuildDprPipeline(const DprPipelineConfig& config) {
  DprPipeline pipeline;
  pipeline.config = config;
  Rng rng(config.seed);

  pipeline.world = std::make_unique<envs::DprWorld>(config.world);
  pipeline.dataset =
      data::GenerateDprDataset(*pipeline.world, config.sessions_per_city,
                               rng);
  pipeline.dataset.SplitUsers(config.train_fraction, rng,
                              &pipeline.train_data, &pipeline.test_data);

  Rng ensemble_rng = rng.Split(1);
  pipeline.ensemble = sim::SimulatorEnsemble::Build(
      pipeline.train_data, config.ensemble_size, config.sim_train,
      ensemble_rng);
  if (config.parallel_ensemble) {
    pipeline.ensemble.set_thread_pool(&core::ThreadPool::Global());
  }
  S2R_CHECK(config.train_simulators >= 1 &&
            config.train_simulators < config.ensemble_size);
  for (int i = 0; i < config.ensemble_size; ++i) {
    if (i < config.train_simulators) {
      pipeline.train_sim_indices.push_back(i);
    } else {
      pipeline.heldout_sim_indices.push_back(i);
    }
  }

  if (config.apply_trend_filter) {
    const std::vector<int> keep =
        sim::TrendFilter(pipeline.ensemble, pipeline.train_data,
                         config.trend_deltas, /*bonus_action_index=*/1);
    const data::LoggedDataset filtered =
        sim::SelectTrajectories(pipeline.train_data, keep);
    pipeline.filtered_train =
        RepairGroups(pipeline.train_data, filtered, /*min_per_group=*/3);
    S2R_LOG_INFO("F_trend kept %d / %d trajectories",
                 pipeline.filtered_train.size(),
                 pipeline.train_data.size());
  } else {
    pipeline.filtered_train = pipeline.train_data;
  }

  pipeline.sadae_sets = pipeline.filtered_train.AllGroupStepSets();
  return pipeline;
}

DprTrainedPolicy TrainDprPolicy(const DprPipeline& pipeline,
                                const DprTrainOptions& options) {
  Rng rng(options.seed ^ 0xd5f3u);
  const bool use_sadae =
      options.variant == baselines::AgentVariant::kSim2Rec;

  // --- Training data choice (F_trend is an EE guard). ---
  const data::LoggedDataset& train_data =
      options.extrapolation_error_guards ? pipeline.filtered_train
                                         : pipeline.train_data;

  // --- Simulator-backed training environments, one per group. ---
  std::vector<std::unique_ptr<sim::SimGroupEnv>> owned_envs;
  std::vector<envs::GroupBatchEnv*> training_envs;
  for (int g : train_data.GroupIds()) {
    sim::SimEnvConfig env_config = pipeline.config.sim_env;
    env_config.cost_factor = pipeline.world->city(g).cost_factor;
    if (!options.prediction_error_guards) {
      // Sim2Rec-PE: no uncertainty penalty, no truncated random-start
      // rollouts — full-horizon rollouts from session starts.
      env_config.uncertainty_alpha = 0.0;
      env_config.random_start_states = false;
      env_config.truncated_horizon = pipeline.config.world.horizon;
    }
    if (!options.extrapolation_error_guards) {
      env_config.use_exec_filter = false;  // Sim2Rec-EE
    }
    owned_envs.push_back(std::make_unique<sim::SimGroupEnv>(
        &train_data, g, &pipeline.ensemble, env_config));
    training_envs.push_back(owned_envs.back().get());
  }

  // --- Agent (+ SADAE). ---
  core::ContextAgentConfig agent_config = baselines::MakeAgentConfig(
      options.variant, envs::kDprObsDim, envs::kDprActionDim);
  agent_config.lstm_hidden = options.lstm_hidden;
  agent_config.f_hidden = options.f_hidden;
  agent_config.f_out = options.f_out;
  agent_config.policy_hidden = options.policy_hidden;
  agent_config.value_hidden = options.value_hidden;
  agent_config.init_log_std = -2.0;
  // Center the initial policy on the logged behaviour policy's mean
  // action so early rollouts live inside the executable action boxes.
  {
    nn::Tensor inputs, targets;
    train_data.FlattenForSimulator(&inputs, &targets);
    agent_config.action_bias.assign(envs::kDprActionDim, 0.0);
    for (int c = 0; c < envs::kDprActionDim; ++c) {
      double mean = 0.0;
      for (int r = 0; r < inputs.rows(); ++r)
        mean += inputs(r, envs::kDprObsDim + c);
      agent_config.action_bias[c] = mean / inputs.rows();
    }
  }

  DprTrainedPolicy trained;
  std::unique_ptr<sadae::SadaeTrainer> sadae_trainer;
  if (use_sadae) {
    sadae::SadaeConfig sadae_config;
    sadae_config.state_dim = envs::kDprContinuousObsDim;
    sadae_config.categorical_dim = envs::kDprTierCount;
    sadae_config.action_dim = envs::kDprActionDim;
    sadae_config.latent_dim = options.sadae_latent;
    sadae_config.encoder_hidden = options.sadae_hidden;
    sadae_config.decoder_hidden = options.sadae_hidden;
    Rng sadae_rng = rng.Split(3);
    trained.sadae_model =
        std::make_unique<sadae::Sadae>(sadae_config, sadae_rng);
    sadae::SadaeTrainConfig sadae_train;
    sadae_train.learning_rate = 1e-3;
    sadae_trainer = std::make_unique<sadae::SadaeTrainer>(
        trained.sadae_model.get(), sadae_train);
    for (int epoch = 0; epoch < options.sadae_pretrain_epochs; ++epoch) {
      sadae_trainer->TrainEpoch(pipeline.sadae_sets, sadae_rng);
    }
  }

  Rng agent_rng = rng.Split(4);
  trained.agent = std::make_unique<core::ContextAgent>(
      agent_config, trained.sadae_model.get(), agent_rng);

  // --- Loop: draw omega per iteration (Algorithm 1 line 4). ---
  core::TrainLoopConfig loop;
  loop.iterations = options.iterations;
  loop.eval_every = options.eval_every;
  loop.ppo = options.ppo;
  // The paper anneals the learning rate (1e-4 -> 1e-6, Table II).
  loop.final_learning_rate = options.ppo.learning_rate * 0.05;
  loop.sadae_steps_per_iteration = use_sadae ? 1 : 0;
  loop.parallelism = options.parallelism;
  loop.rollout_shards = options.rollout_shards;
  loop.checkpoint_every = options.checkpoint_every;
  loop.seed = rng.NextU64();

  core::ZeroShotTrainer trainer(
      &*trained.agent, training_envs, loop, sadae_trainer.get(),
      use_sadae ? &pipeline.sadae_sets : nullptr);

  std::vector<int> sim_choices = pipeline.train_sim_indices;
  if (options.variant == baselines::AgentVariant::kDirect) {
    sim_choices = {pipeline.train_sim_indices[0]};
  }
  trainer.set_on_env_selected(
      [sim_choices](envs::GroupBatchEnv* env, Rng& env_rng) {
        auto* sim_env = static_cast<sim::SimGroupEnv*>(env);
        sim_env->set_active_simulator(sim_choices[env_rng.UniformInt(
            static_cast<int>(sim_choices.size()))]);
      });

  if (options.eval_every > 0 && !pipeline.heldout_sim_indices.empty()) {
    const int eval_sim = pipeline.heldout_sim_indices[0];
    const DprPipeline* pipeline_ptr = &pipeline;
    trainer.set_evaluator(
        [pipeline_ptr, eval_sim](rl::Agent& agent, Rng& eval_rng) {
          return EvaluateAgentOnSimulator(*pipeline_ptr,
                                          pipeline_ptr->test_data,
                                          eval_sim, agent, eval_rng,
                                          /*episodes_per_group=*/1);
        });
  }

  core::CompositeObserver observers;
  if (!options.export_checkpoint_dir.empty()) {
    serve::CheckpointMetadata metadata;
    metadata.variant = baselines::AgentVariantName(options.variant);
    metadata.seed = options.seed;
    observers.AddOwned(std::make_unique<CheckpointExportObserver>(
        options.export_checkpoint_dir, trained.agent.get(), metadata));
  }
  if (!options.export_metrics_path.empty()) {
    observers.AddOwned(
        std::make_unique<IterationLogExporter>(options.export_metrics_path));
  }
  if (!observers.empty()) trainer.set_observer(&observers);

  trained.logs = trainer.Train();
  return trained;
}

std::unique_ptr<sim::SimGroupEnv> MakeEvalSimEnv(
    const DprPipeline& pipeline, const data::LoggedDataset& data,
    int group_id, int simulator_index, int rollout_users) {
  sim::SimEnvConfig config;
  const int members =
      static_cast<int>(data.GroupMembers(group_id).size());
  config.rollout_users =
      rollout_users > 0 ? rollout_users : std::min(members, 32);
  config.truncated_horizon = pipeline.config.world.horizon;
  config.uncertainty_alpha = 0.0;
  config.random_start_states = false;
  config.use_exec_filter = false;
  config.cost_factor = pipeline.world->city(group_id).cost_factor;
  auto env = std::make_unique<sim::SimGroupEnv>(&data, group_id,
                                                &pipeline.ensemble,
                                                config);
  env->set_active_simulator(simulator_index);
  return env;
}

OrdersAndCost EvaluateOrdersAndCost(
    const DprPipeline& pipeline, const data::LoggedDataset& data,
    int simulator_index,
    const std::function<nn::Tensor(const nn::Tensor&)>& policy_fn,
    Rng& rng, int episodes_per_group) {
  OrdersAndCost totals;
  int64_t steps = 0;
  data::DprBehaviorPolicy behavior;
  for (int g : data.GroupIds()) {
    auto env = MakeEvalSimEnv(pipeline, data, g, simulator_index);
    for (int episode = 0; episode < episodes_per_group; ++episode) {
      nn::Tensor obs = env->Reset(rng);
      for (int t = 0; t < env->horizon(); ++t) {
        const nn::Tensor actions =
            policy_fn ? policy_fn(obs) : behavior.Act(obs, rng);
        const envs::StepResult step = env->Step(actions, rng);
        for (int i = 0; i < env->num_users(); ++i) {
          totals.orders_per_step += env->last_orders()[i];
          totals.cost_per_step += env->last_costs()[i];
          totals.reward_per_step += step.rewards[i];
          ++steps;
        }
        obs = step.next_obs;
        if (step.horizon_reached) break;
      }
    }
  }
  S2R_CHECK(steps > 0);
  totals.orders_per_step /= steps;
  totals.cost_per_step /= steps;
  totals.reward_per_step /= steps;
  return totals;
}

double EvaluateAgentOnSimulator(const DprPipeline& pipeline,
                                const data::LoggedDataset& data,
                                int simulator_index, rl::Agent& agent,
                                Rng& rng, int episodes_per_group) {
  double total = 0.0;
  int groups = 0;
  for (int g : data.GroupIds()) {
    auto env = MakeEvalSimEnv(pipeline, data, g, simulator_index);
    total += rl::EvaluateAgentReturn(*env, agent, episodes_per_group,
                                     rng, /*deterministic=*/true);
    ++groups;
  }
  const double horizon = pipeline.config.world.horizon;
  return total / groups / (envs::kDprOrderScale * horizon);
}

double EvaluatePolicyFnOnSimulator(
    const DprPipeline& pipeline, const data::LoggedDataset& data,
    int simulator_index,
    const std::function<nn::Tensor(const nn::Tensor&)>& policy_fn,
    Rng& rng, int episodes_per_group) {
  double total = 0.0;
  int groups = 0;
  for (int g : data.GroupIds()) {
    auto env = MakeEvalSimEnv(pipeline, data, g, simulator_index);
    for (int episode = 0; episode < episodes_per_group; ++episode) {
      total += envs::EvaluateEpisodeReturn(*env, policy_fn, rng) /
               episodes_per_group;
    }
    ++groups;
  }
  const double horizon = pipeline.config.world.horizon;
  return total / groups / (envs::kDprOrderScale * horizon);
}

}  // namespace experiments
}  // namespace sim2rec
