#include "sadae/sadae.h"

#include <algorithm>
#include <cmath>

namespace sim2rec {
namespace sadae {
namespace {

constexpr double kLogStdMin = -4.0;
constexpr double kLogStdMax = 2.0;

}  // namespace

Sadae::Sadae(const SadaeConfig& config, Rng& rng) : config_(config) {
  S2R_CHECK(config.state_dim >= 1);
  S2R_CHECK(config.categorical_dim >= 0);
  S2R_CHECK(config.action_dim >= 0);
  S2R_CHECK(config.latent_dim >= 1);

  encoder_ = std::make_unique<nn::Mlp>(
      "sadae.enc", config.input_dim(), config.encoder_hidden,
      2 * config.latent_dim, rng, nn::Activation::kRelu);
  AddChild(encoder_.get());

  // State decoder outputs Gaussian parameters for the continuous block
  // plus class logits for the categorical block.
  const int state_out = 2 * config.state_dim + config.categorical_dim;
  state_decoder_ = std::make_unique<nn::Mlp>(
      "sadae.dec_s", config.latent_dim, config.decoder_hidden, state_out,
      rng, nn::Activation::kRelu);
  AddChild(state_decoder_.get());

  if (config.action_dim > 0) {
    const int action_in =
        config.latent_dim + config.state_dim + config.categorical_dim;
    action_decoder_ = std::make_unique<nn::Mlp>(
        "sadae.dec_a", action_in, config.decoder_hidden,
        2 * config.action_dim, rng, nn::Activation::kRelu);
    AddChild(action_decoder_.get());
  }
}

nn::DiagGaussian Sadae::PoolPosterior(nn::Var enc_out, int n) const {
  const int latent = config_.latent_dim;
  nn::Var mu_i = nn::SliceColsV(enc_out, 0, latent);           // [N x L]
  nn::Var log_std_i = nn::ClipV(
      nn::SliceColsV(enc_out, latent, 2 * latent), kLogStdMin,
      kLogStdMax);
  // Product of Gaussians: precision sums, precision-weighted mean.
  nn::Var precision_i = nn::ExpV(nn::ScaleV(log_std_i, -2.0));
  nn::Var precision = nn::ScaleV(nn::ColMeanV(precision_i),
                                 static_cast<double>(n));  // [1 x L]
  nn::Var weighted = nn::ScaleV(
      nn::ColMeanV(nn::MulV(precision_i, mu_i)), static_cast<double>(n));
  nn::Var mean = nn::DivV(weighted, precision);
  nn::Var log_std = nn::ScaleV(nn::LogV(precision), -0.5);
  return nn::DiagGaussian{mean, log_std};
}

nn::DiagGaussian Sadae::EncodeSet(nn::Tape& tape, const nn::Tensor& x) {
  S2R_CHECK(x.cols() == config_.input_dim());
  S2R_CHECK(x.rows() >= 1);
  nn::Var input = tape.Constant(x);
  nn::Var enc_out = encoder_->Forward(tape, input);
  return PoolPosterior(enc_out, x.rows());
}

nn::Tensor Sadae::EncodeSetValue(const nn::Tensor& x) const {
  S2R_CHECK(x.cols() == config_.input_dim());
  const int n = x.rows();
  const int latent = config_.latent_dim;
  const nn::Tensor enc_out = encoder_->ForwardValue(x);
  // Value-mode product of Gaussians.
  nn::Tensor mean(1, latent, 0.0);
  nn::Tensor precision(1, latent, 0.0);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < latent; ++c) {
      const double log_std = std::clamp(enc_out(r, latent + c),
                                        kLogStdMin, kLogStdMax);
      const double p = std::exp(-2.0 * log_std);
      precision(0, c) += p;
      mean(0, c) += p * enc_out(r, c);
    }
  }
  for (int c = 0; c < latent; ++c) mean(0, c) /= precision(0, c);
  return mean;
}

nn::Tensor Sadae::EncodeRowsValue(const nn::Tensor& x) const {
  S2R_CHECK(x.cols() == config_.input_dim());
  const nn::Tensor enc_out = encoder_->ForwardValue(x);
  // Singleton pooling: mean = (p * mu) / p = mu for every row.
  return enc_out.SliceCols(0, config_.latent_dim);
}

nn::Var Sadae::NegElbo(nn::Tape& tape, const nn::Tensor& x, Rng& rng) {
  S2R_CHECK(x.cols() == config_.input_dim());
  const int n = x.rows();
  const int sd = config_.state_dim;
  const int cd = config_.categorical_dim;
  const int ad = config_.action_dim;

  nn::DiagGaussian posterior = EncodeSet(tape, x);
  nn::Var v = posterior.Rsample(rng);       // [1 x latent]
  nn::Var v_tiled = nn::TileRowsV(v, n);    // [N x latent]

  // --- log p_theta(s_i | v) ---
  nn::Var dec_s = state_decoder_->Forward(tape, v_tiled);
  nn::Var s_mean = nn::SliceColsV(dec_s, 0, sd);
  nn::Var s_log_std =
      nn::ClipV(nn::SliceColsV(dec_s, sd, 2 * sd), kLogStdMin, kLogStdMax);
  const nn::Tensor states = x.SliceCols(0, sd);
  nn::Var recon = nn::SumV(
      nn::DiagGaussian{s_mean, s_log_std}.LogProb(states));

  if (cd > 0) {
    nn::Var cat_logits = nn::SliceColsV(dec_s, 2 * sd, 2 * sd + cd);
    std::vector<int> labels(n, 0);
    for (int r = 0; r < n; ++r) {
      int best = 0;
      for (int k = 1; k < cd; ++k) {
        if (x(r, sd + k) > x(r, sd + best)) best = k;
      }
      labels[r] = best;
    }
    recon = nn::AddV(
        recon, nn::SumV(nn::CategoricalDist{cat_logits}.LogProb(labels)));
  }

  // --- log p_theta(a_i | v, s_i) ---
  if (ad > 0) {
    const nn::Tensor state_block = x.SliceCols(0, sd + cd);
    nn::Var s_input = tape.Constant(state_block);
    nn::Var dec_a_in = nn::ConcatColsV({v_tiled, s_input});
    nn::Var dec_a = action_decoder_->Forward(tape, dec_a_in);
    nn::Var a_mean = nn::SliceColsV(dec_a, 0, ad);
    nn::Var a_log_std = nn::ClipV(nn::SliceColsV(dec_a, ad, 2 * ad),
                                  kLogStdMin, kLogStdMax);
    const nn::Tensor actions = x.SliceCols(sd + cd, sd + cd + ad);
    recon = nn::AddV(
        recon, nn::SumV(nn::DiagGaussian{a_mean, a_log_std}.LogProb(
                   actions)));
  }

  nn::Var kl = nn::SumV(posterior.KlToStandardNormal());  // scalar
  // Negative ELBO, normalized by the set size for scale stability.
  nn::Var neg_elbo = nn::AddV(nn::NegV(recon),
                              nn::ScaleV(kl, config_.kl_weight));
  return nn::ScaleV(neg_elbo, 1.0 / n);
}

DecodedDistribution Sadae::DecodeValue(const nn::Tensor& v) const {
  S2R_CHECK(v.rows() == 1 && v.cols() == config_.latent_dim);
  const int sd = config_.state_dim;
  const int cd = config_.categorical_dim;
  const nn::Tensor out = state_decoder_->ForwardValue(v);

  DecodedDistribution decoded;
  decoded.state_mean = out.SliceCols(0, sd);
  decoded.state_std = out.SliceCols(sd, 2 * sd);
  decoded.state_std.Apply([](double raw) {
    return std::exp(std::clamp(raw, kLogStdMin, kLogStdMax));
  });
  if (cd > 0) {
    nn::Tensor logits = out.SliceCols(2 * sd, 2 * sd + cd);
    double mx = logits.MaxAll();
    double sum = 0.0;
    decoded.cat_probs = nn::Tensor(1, cd);
    for (int k = 0; k < cd; ++k) {
      decoded.cat_probs(0, k) = std::exp(logits(0, k) - mx);
      sum += decoded.cat_probs(0, k);
    }
    for (int k = 0; k < cd; ++k) decoded.cat_probs(0, k) /= sum;
  }
  return decoded;
}

nn::Tensor Sadae::SampleReconstructedStates(const nn::Tensor& v, int n,
                                            Rng& rng) const {
  const DecodedDistribution decoded = DecodeValue(v);
  const int sd = config_.state_dim;
  const int cd = config_.categorical_dim;
  nn::Tensor out(n, sd + cd, 0.0);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < sd; ++c) {
      out(r, c) = rng.Normal(decoded.state_mean(0, c),
                             decoded.state_std(0, c));
    }
    if (cd > 0) {
      const int k = rng.Categorical(decoded.cat_probs.RowVecStd(0));
      out(r, sd + k) = 1.0;
    }
  }
  return out;
}

}  // namespace sadae
}  // namespace sim2rec
