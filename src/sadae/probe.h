#ifndef SIM2REC_SADAE_PROBE_H_
#define SIM2REC_SADAE_PROBE_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "sadae/sadae.h"

namespace sim2rec {
namespace sadae {

/// The hidden-state prediction experiment of the paper (Sec. V-C4,
/// Fig. 9b): a small probe network is trained to predict the KDE-based
/// KL divergence between two datasets (X_i, X_j) from their embeddings
/// (v_i, v_j). If the embeddings store distributional information, the
/// probe's mean absolute error falls as SADAE trains.
class KlProbe : public nn::Module {
 public:
  /// `latent_dim` is the SADAE latent size; the probe input is the
  /// concatenation [v_i, v_j]. Architecture follows the paper: one
  /// 32-unit tanh hidden layer into a linear output.
  KlProbe(int latent_dim, Rng& rng);

  /// Trains the probe from scratch (re-initialization is the caller's
  /// job: construct a fresh probe per evaluation, as the paper retrains
  /// it every 100 SADAE iterations). Returns the final training MAE.
  double Train(const nn::Tensor& embedding_pairs,
               const nn::Tensor& target_kls, int epochs, double lr,
               Rng& rng);

  /// Mean absolute error on a labeled pair set.
  double EvaluateMae(const nn::Tensor& embedding_pairs,
                     const nn::Tensor& target_kls) const;

 private:
  std::unique_ptr<nn::Mlp> net_;
};

/// Builds the probe's supervised dataset from per-set embeddings
/// [M x latent] and a precomputed pairwise KLD matrix [M x M]:
/// all ordered pairs (i, j), i != j.
void BuildProbeDataset(const nn::Tensor& embeddings,
                       const nn::Tensor& pairwise_kl,
                       nn::Tensor* embedding_pairs,
                       nn::Tensor* target_kls);

}  // namespace sadae
}  // namespace sim2rec

#endif  // SIM2REC_SADAE_PROBE_H_
