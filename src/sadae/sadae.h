#ifndef SIM2REC_SADAE_SADAE_H_
#define SIM2REC_SADAE_SADAE_H_

#include <memory>
#include <vector>

#include "nn/distributions.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace sim2rec {
namespace sadae {

/// Configuration of the State-Action Distributional variational
/// AutoEncoder (paper Sec. IV-B).
///
/// Input rows are laid out [continuous state | categorical one-hot |
/// action]; any of the last two blocks may be absent. The LTS experiments
/// use the state-only variant (Sec. V-B2), DPR uses continuous +
/// categorical states and continuous actions (Sec. V-C2).
struct SadaeConfig {
  int state_dim = 0;        // continuous state features
  int categorical_dim = 0;  // size of the one-hot block (0 = none)
  int action_dim = 0;       // continuous action features (0 = none)
  int latent_dim = 5;       // units of the latent code v
  std::vector<int> encoder_hidden = {64, 64};
  std::vector<int> decoder_hidden = {64, 64};
  /// Weight of the KL term in the (negative) ELBO.
  double kl_weight = 1.0;

  int input_dim() const { return state_dim + categorical_dim + action_dim; }
};

/// Decoded per-set distribution parameters psi (plain values).
struct DecodedDistribution {
  nn::Tensor state_mean;  // [1 x state_dim]
  nn::Tensor state_std;   // [1 x state_dim]
  nn::Tensor cat_probs;   // [1 x categorical_dim] (empty if unused)
};

/// SADAE embeds a *set* X of state-action pairs into a single latent
/// Gaussian posterior q_kappa(v | X) = prod_i q_kappa(v | s_i, a_i)
/// (product of per-pair Gaussians, paper Eq. 6), and reconstructs the
/// generating distribution parameters psi via decoders p_theta(psi_s | v)
/// and p_theta(psi_a | v, s) (Theorem 4.1).
class Sadae : public nn::Module {
 public:
  Sadae(const SadaeConfig& config, Rng& rng);

  const SadaeConfig& config() const { return config_; }
  int latent_dim() const { return config_.latent_dim; }

  /// Encoder q_kappa (inference-plan freezing: the serving path only
  /// needs the per-row posterior mean, i.e. the encoder's mean head).
  const nn::Mlp* encoder() const { return encoder_.get(); }

  /// Differentiable set encoding: returns the pooled posterior as a
  /// [1 x latent] DiagGaussian on the tape. X is [N x input_dim].
  nn::DiagGaussian EncodeSet(nn::Tape& tape, const nn::Tensor& x);

  /// Inference-only encoding; returns the posterior mean [1 x latent].
  nn::Tensor EncodeSetValue(const nn::Tensor& x) const;

  /// Per-row singleton-set posterior means: row i of the result is
  /// EncodeSetValue applied to the set {x_i} alone. For a one-element
  /// set the product-of-Gaussians pooling reduces to the per-pair
  /// posterior mean, so this is just the encoder's mean head — one
  /// batched forward, rows independent. The serving layer uses this so
  /// a user's group embedding never depends on which other users happen
  /// to share a micro-batch (see DESIGN.md, "Serving").
  nn::Tensor EncodeRowsValue(const nn::Tensor& x) const;

  /// Negative tractable ELBO of one set (Theorem 4.1), normalized by the
  /// set size. `rng` drives the reparameterized latent sample.
  nn::Var NegElbo(nn::Tape& tape, const nn::Tensor& x, Rng& rng);

  /// Decodes the state-distribution parameters from a latent mean
  /// [1 x latent] (no graph).
  DecodedDistribution DecodeValue(const nn::Tensor& v) const;

  /// Draws n reconstructed full-state rows (continuous ~ the decoded
  /// Gaussian, categorical ~ the decoded class distribution as one-hot).
  nn::Tensor SampleReconstructedStates(const nn::Tensor& v, int n,
                                       Rng& rng) const;

 private:
  /// Per-pair posterior heads and product-of-Gaussians pooling.
  nn::DiagGaussian PoolPosterior(nn::Var enc_out, int n) const;

  SadaeConfig config_;
  std::unique_ptr<nn::Mlp> encoder_;        // q_kappa(v | s, a)
  std::unique_ptr<nn::Mlp> state_decoder_;  // p_theta(psi_s | v)
  std::unique_ptr<nn::Mlp> action_decoder_; // p_theta(psi_a | v, s)
};

}  // namespace sadae
}  // namespace sim2rec

#endif  // SIM2REC_SADAE_SADAE_H_
