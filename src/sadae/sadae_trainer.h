#ifndef SIM2REC_SADAE_SADAE_TRAINER_H_
#define SIM2REC_SADAE_SADAE_TRAINER_H_

#include <memory>
#include <vector>

#include "nn/optimizer.h"
#include "sadae/sadae.h"

namespace sim2rec {
namespace sadae {

/// Training hyper-parameters for SADAE (paper Table II, scaled).
struct SadaeTrainConfig {
  int sets_per_step = 8;
  /// Each set is subsampled to at most this many pairs per step, keeping
  /// the ELBO cost bounded for large groups.
  int max_pairs_per_set = 64;
  double learning_rate = 1e-3;
  /// L2 regularization weight (paper uses 0.1 / 0.001).
  double weight_decay = 1e-3;
  double grad_clip = 5.0;
};

/// Minibatch Adam trainer over a corpus of group step sets
/// {X_t^g : g, 0 < t <= T}.
class SadaeTrainer {
 public:
  SadaeTrainer(Sadae* model, const SadaeTrainConfig& config);

  /// One pass over `sets` in random order; returns the mean negative
  /// ELBO per set.
  double TrainEpoch(const std::vector<nn::Tensor>& sets, Rng& rng);

  /// A single gradient step on a batch of set indices.
  double TrainStep(const std::vector<nn::Tensor>& sets,
                   const std::vector<int>& indices, Rng& rng);

  Sadae* model() { return model_; }

 private:
  nn::Tensor SubsamplePairs(const nn::Tensor& set, Rng& rng) const;

  Sadae* model_;
  SadaeTrainConfig config_;
  std::unique_ptr<nn::Adam> optimizer_;
};

/// Closed-form diagnostic for the LTS experiments (paper Fig. 4): KL
/// divergence between the decoded Gaussian of one state feature and the
/// true generating Gaussian N(true_mean, true_std^2).
double DecodedFeatureKl(const Sadae& model, const nn::Tensor& set,
                        int feature_index, double true_mean,
                        double true_std);

}  // namespace sadae
}  // namespace sim2rec

#endif  // SIM2REC_SADAE_SADAE_TRAINER_H_
