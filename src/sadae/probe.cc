#include "sadae/probe.h"

#include <cmath>

#include "nn/optimizer.h"

namespace sim2rec {
namespace sadae {

KlProbe::KlProbe(int latent_dim, Rng& rng) {
  net_ = std::make_unique<nn::Mlp>("probe", 2 * latent_dim,
                                   std::vector<int>{32}, 1, rng,
                                   nn::Activation::kTanh);
  AddChild(net_.get());
}

double KlProbe::Train(const nn::Tensor& embedding_pairs,
                      const nn::Tensor& target_kls, int epochs, double lr,
                      Rng& rng) {
  S2R_CHECK(embedding_pairs.rows() == target_kls.rows());
  S2R_CHECK(embedding_pairs.rows() > 0);
  nn::Adam optimizer(Parameters(), lr);
  const int n = embedding_pairs.rows();
  const int batch = std::min(64, n);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const std::vector<int> order = rng.Permutation(n);
    for (int start = 0; start + batch <= n; start += batch) {
      nn::Tensor bx(batch, embedding_pairs.cols());
      nn::Tensor by(batch, 1);
      for (int k = 0; k < batch; ++k) {
        bx.SetRow(k, embedding_pairs.Row(order[start + k]));
        by(k, 0) = target_kls(order[start + k], 0);
      }
      nn::Tape tape;
      nn::Var pred = net_->Forward(tape, tape.Constant(bx));
      nn::Var loss = nn::MseLossV(pred, by);
      optimizer.ZeroGrad();
      tape.Backward(loss);
      nn::ClipGradNorm(Parameters(), 5.0);
      optimizer.Step();
    }
  }
  return EvaluateMae(embedding_pairs, target_kls);
}

double KlProbe::EvaluateMae(const nn::Tensor& embedding_pairs,
                            const nn::Tensor& target_kls) const {
  S2R_CHECK(embedding_pairs.rows() == target_kls.rows());
  const nn::Tensor pred = net_->ForwardValue(embedding_pairs);
  double mae = 0.0;
  for (int r = 0; r < pred.rows(); ++r) {
    mae += std::abs(pred(r, 0) - target_kls(r, 0));
  }
  return mae / pred.rows();
}

void BuildProbeDataset(const nn::Tensor& embeddings,
                       const nn::Tensor& pairwise_kl,
                       nn::Tensor* embedding_pairs,
                       nn::Tensor* target_kls) {
  const int m = embeddings.rows();
  S2R_CHECK(pairwise_kl.rows() == m && pairwise_kl.cols() == m);
  const int latent = embeddings.cols();
  const int pairs = m * (m - 1);
  *embedding_pairs = nn::Tensor(pairs, 2 * latent);
  *target_kls = nn::Tensor(pairs, 1);
  int row = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j) continue;
      for (int c = 0; c < latent; ++c) {
        (*embedding_pairs)(row, c) = embeddings(i, c);
        (*embedding_pairs)(row, latent + c) = embeddings(j, c);
      }
      (*target_kls)(row, 0) = pairwise_kl(i, j);
      ++row;
    }
  }
}

}  // namespace sadae
}  // namespace sim2rec
