#include "sadae/sadae_trainer.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sim2rec {
namespace sadae {

SadaeTrainer::SadaeTrainer(Sadae* model, const SadaeTrainConfig& config)
    : model_(model), config_(config) {
  S2R_CHECK(model != nullptr);
  optimizer_ = std::make_unique<nn::Adam>(
      model->Parameters(), config.learning_rate, 0.9, 0.999, 1e-8,
      config.weight_decay);
}

nn::Tensor SadaeTrainer::SubsamplePairs(const nn::Tensor& set,
                                        Rng& rng) const {
  if (set.rows() <= config_.max_pairs_per_set) return set;
  const std::vector<int> order = rng.Permutation(set.rows());
  nn::Tensor out(config_.max_pairs_per_set, set.cols());
  for (int r = 0; r < config_.max_pairs_per_set; ++r) {
    out.SetRow(r, set.Row(order[r]));
  }
  return out;
}

double SadaeTrainer::TrainStep(const std::vector<nn::Tensor>& sets,
                               const std::vector<int>& indices, Rng& rng) {
  S2R_CHECK(!indices.empty());
  S2R_TRACE_SPAN("sadae/train_step");
  nn::Tape tape;
  nn::Var total;
  bool first = true;
  for (int idx : indices) {
    S2R_CHECK(idx >= 0 && idx < static_cast<int>(sets.size()));
    const nn::Tensor batch = SubsamplePairs(sets[idx], rng);
    nn::Var neg_elbo = model_->NegElbo(tape, batch, rng);
    total = first ? neg_elbo : nn::AddV(total, neg_elbo);
    first = false;
  }
  nn::Var loss = nn::ScaleV(total, 1.0 / indices.size());
  optimizer_->ZeroGrad();
  tape.Backward(loss);
  nn::ClipGradNorm(model_->Parameters(), config_.grad_clip);
  optimizer_->Step();
  const double neg_elbo = loss.value()(0, 0);
  S2R_COUNT("sadae.steps", 1);
  S2R_GAUGE_SET("sadae.neg_elbo", neg_elbo);
  return neg_elbo;
}

double SadaeTrainer::TrainEpoch(const std::vector<nn::Tensor>& sets,
                                Rng& rng) {
  S2R_CHECK(!sets.empty());
  const std::vector<int> order =
      rng.Permutation(static_cast<int>(sets.size()));
  double total_loss = 0.0;
  int steps = 0;
  for (size_t start = 0; start < order.size();
       start += config_.sets_per_step) {
    std::vector<int> batch;
    for (size_t k = start;
         k < order.size() &&
         k < start + static_cast<size_t>(config_.sets_per_step);
         ++k) {
      batch.push_back(order[k]);
    }
    total_loss += TrainStep(sets, batch, rng);
    ++steps;
  }
  return steps > 0 ? total_loss / steps : 0.0;
}

double DecodedFeatureKl(const Sadae& model, const nn::Tensor& set,
                        int feature_index, double true_mean,
                        double true_std) {
  S2R_CHECK(feature_index >= 0 &&
            feature_index < model.config().state_dim);
  S2R_CHECK(true_std > 0.0);
  const nn::Tensor v = model.EncodeSetValue(set);
  const DecodedDistribution decoded = model.DecodeValue(v);
  const double mean_q = decoded.state_mean(0, feature_index);
  const double std_q = std::max(decoded.state_std(0, feature_index), 1e-6);
  // KL(true || decoded) for 1-D Gaussians.
  const double md = true_mean - mean_q;
  return std::log(std_q / true_std) +
         (true_std * true_std + md * md) / (2.0 * std_q * std_q) - 0.5;
}

}  // namespace sadae
}  // namespace sim2rec
