#!/usr/bin/env bash
# Downscaled population-scale serving smoke: runs bench_serve_scale
# --smoke (10k+ concurrent sessions against a 2-shard router with the
# autoscaler live, <60s on a laptop) in a scratch directory and checks
# the JSON report it is contracted to emit. Registered as the
# `run_scale_smoke` ctest with label `load` (tests/CMakeLists.txt), so
# `ctest -L load` covers the whole load harness end to end.
#
# Usage: run_scale_smoke.sh [path/to/bench_serve_scale]
set -u

BENCH="${1:-$(cd "$(dirname "$0")/.." && pwd)/build/bench/bench_serve_scale}"
if ! [ -x "$BENCH" ]; then
  echo "run_scale_smoke: bench binary not found at $BENCH" >&2
  echo "run_scale_smoke: build it first (cmake --build build -j)" >&2
  exit 2
fi
BENCH="$(cd "$(dirname "$BENCH")" && pwd)/$(basename "$BENCH")"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cd "$workdir" || exit 2

if ! "$BENCH" --smoke; then
  echo "run_scale_smoke: FAILED — bench_serve_scale --smoke exited nonzero" >&2
  exit 1
fi

report="results/BENCH_serve_scale.json"
if ! [ -s "$report" ]; then
  echo "run_scale_smoke: FAILED — $report was not written" >&2
  exit 1
fi
# The contract of the report: identity, a passing reproducibility
# check, and the autoscaler timeline.
for needle in '"bench": "serve_scale"' '"match": true' '"timeline"' \
              '"peak_active"' '"scale_outs"'; do
  if ! grep -qF "$needle" "$report"; then
    echo "run_scale_smoke: FAILED — $report is missing $needle" >&2
    exit 1
  fi
done

echo "run_scale_smoke: OK ($report)"
