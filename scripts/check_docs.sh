#!/usr/bin/env bash
# Verifies that every binary a documentation code block tells the reader
# to run corresponds to a real CMake target. Scans fenced code blocks in
# README.md and docs/*.md for invocations shaped like
#   ./build/examples/<name>   build/tests/<name>   build-tsan/bench/<name>
# and checks each <name> against the targets declared via
# add_executable / s2r_add_test / s2r_add_bench / s2r_add_example.
#
# Wired as the `check_docs` ctest (tests/CMakeLists.txt), so stale docs
# fail CI the same way a broken test does.
#
# Usage: check_docs.sh [repo_root]
set -u

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$ROOT" || exit 2

# --- 1. Collect declared executable target names. ----------------------
targets_file="$(mktemp)"
trap 'rm -f "$targets_file"' EXIT

find "$ROOT" -name CMakeLists.txt -not -path '*/build*' -print0 |
  xargs -0 sed -n \
    -e 's/^[[:space:]]*add_executable(\([A-Za-z0-9_-]*\).*/\1/p' \
    -e 's/^[[:space:]]*s2r_add_test(\([A-Za-z0-9_-]*\).*/\1/p' \
    -e 's/^[[:space:]]*s2r_add_bench(\([A-Za-z0-9_-]*\).*/\1/p' \
    -e 's/^[[:space:]]*s2r_add_example(\([A-Za-z0-9_-]*\).*/\1/p' \
  | sort -u > "$targets_file"

if ! [ -s "$targets_file" ]; then
  echo "check_docs: found no CMake targets under $ROOT" >&2
  exit 2
fi

# --- 2. Scan fenced code blocks for build/<dir>/<binary> mentions. -----
docs=(README.md)
for f in docs/*.md; do
  [ -e "$f" ] && docs+=("$f")
done

fail=0
for doc in "${docs[@]}"; do
  [ -e "$doc" ] || continue
  # Keep only lines inside ``` fences, then pull out binary names.
  mentions=$(awk '/^```/ { fence = !fence; next } fence { print }' "$doc" |
    grep -oE '(\./)?build[A-Za-z0-9_-]*/(examples|bench|tests)/[A-Za-z0-9_-]+' |
    sed 's|.*/||' | sort -u)
  for name in $mentions; do
    if ! grep -qx "$name" "$targets_file"; then
      echo "check_docs: $doc mentions binary '$name' with no CMake target" >&2
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED — docs reference binaries that do not exist" >&2
  exit 1
fi

# --- 3. Metric names the docs cite must exist in source. ---------------
# OPERATIONS.md, ARCHITECTURE.md and the README document registry
# metrics as backticked dotted names (`serve.latency_us`,
# `obs.uptime_s`, ...). Each one must appear as a string literal
# somewhere under src/ — otherwise the doc points an operator at a
# series that will never be emitted.
for doc in docs/OPERATIONS.md docs/ARCHITECTURE.md README.md; do
  [ -e "$doc" ] || continue
  metric_names=$(grep -oE '`(serve|transport|obs|load)\.[a-z0-9_.]+`' \
      "$doc" | tr -d '`' | sort -u)
  for name in $metric_names; do
    if ! grep -rqF "\"$name\"" src/; then
      echo "check_docs: $doc documents metric '$name' not found in src/" >&2
      fail=1
    fi
  done
done
if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED — documented metric names missing from source" >&2
  exit 1
fi

# --- 4. PROTOCOL.md message-type table must match the wire.h enum. ----
# The protocol doc's "Message types" table rows look like
#   | 1 | `kActRequest` | ... |
# and the executable counterpart is the MessageType enum in
# src/transport/wire.h (`kActRequest = 1,`). Both directions are
# checked: a documented type that is not in the enum, or an enum value
# the doc forgot, fails — so the byte-level reference can never drift
# from the codec.
if [ -e docs/PROTOCOL.md ] && [ -e src/transport/wire.h ]; then
  doc_types=$(awk '/^## Message types/{sec=1; next} /^## /{sec=0} sec' \
      docs/PROTOCOL.md |
    grep -oE '^\| *[0-9]+ *\| *`k[A-Za-z]+`' |
    sed 's/[|`]//g' | awk '{print $1 " " $2}' | sort -u)
  enum_types=$(awk '/^enum class MessageType/,/^\};/' src/transport/wire.h |
    grep -oE 'k[A-Za-z]+ = [0-9]+' | awk '{print $3 " " $1}' | sort -u)
  if [ -z "$doc_types" ] || [ -z "$enum_types" ]; then
    echo "check_docs: could not extract message types (doc table or enum moved?)" >&2
    fail=1
  elif [ "$doc_types" != "$enum_types" ]; then
    echo "check_docs: PROTOCOL.md message-type table disagrees with wire.h MessageType enum" >&2
    echo "--- documented (docs/PROTOCOL.md):" >&2
    echo "$doc_types" >&2
    echo "--- declared (src/transport/wire.h):" >&2
    echo "$enum_types" >&2
    fail=1
  fi
  if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED — protocol doc out of sync with the wire enum" >&2
    exit 1
  fi
fi

# --- 5. ARCHITECTURE.md module map must match the src/ tree. -----------
# The module-map table keys its rows as | `src/<dir>` | ... |. Both
# directions are checked: a row naming a directory that does not exist,
# or a src/ subdirectory the table forgot, fails — so the system map
# can never silently drift from the layout.
if [ -e docs/ARCHITECTURE.md ]; then
  doc_dirs=$(grep -oE '^\| *`src/[a-z_]+`' docs/ARCHITECTURE.md |
    sed 's/[|`[:space:]]//g; s|^src/||' | sort -u)
  src_dirs=$(find src -mindepth 1 -maxdepth 1 -type d |
    sed 's|^src/||' | sort -u)
  if [ -z "$doc_dirs" ]; then
    echo "check_docs: ARCHITECTURE.md module-map rows not found (table moved?)" >&2
    fail=1
  elif [ "$doc_dirs" != "$src_dirs" ]; then
    echo "check_docs: ARCHITECTURE.md module map disagrees with the src/ tree" >&2
    echo "--- documented (docs/ARCHITECTURE.md):" >&2
    echo "$doc_dirs" >&2
    echo "--- on disk (src/*/):" >&2
    echo "$src_dirs" >&2
    fail=1
  fi
  if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED — architecture module map out of sync with src/" >&2
    exit 1
  fi
fi
echo "check_docs: OK (binaries, metric names, message types and module map all check out)"
