#!/usr/bin/env bash
# Live observability smoke: starts bench_serve_scale --smoke with the
# HTTP metrics endpoint on an ephemeral port, then — while the run is
# in flight — curls /healthz, /metrics (Prometheus text) and
# /metrics.json (validated with the json_validate tool), and finally
# checks the exporter's append-only JSONL for valid lines carrying
# exemplars. Registered as the `run_obs_live_smoke` ctest with label
# `obs` (tests/CMakeLists.txt), so `ctest -L obs` exercises the whole
# observability plane against a real serving run.
#
# Usage: run_obs_live_smoke.sh [path/to/bench_serve_scale] [path/to/json_validate]
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="${1:-$ROOT/build/bench/bench_serve_scale}"
JSON_VALIDATE="${2:-$ROOT/build/tests/json_validate}"
CURL="$(command -v curl || true)"

for bin in "$BENCH" "$JSON_VALIDATE"; do
  if ! [ -x "$bin" ]; then
    echo "run_obs_live_smoke: binary not found at $bin" >&2
    echo "run_obs_live_smoke: build it first (cmake --build build -j)" >&2
    exit 2
  fi
done
if [ -z "$CURL" ]; then
  echo "run_obs_live_smoke: SKIP — curl not available" >&2
  exit 77
fi
BENCH="$(cd "$(dirname "$BENCH")" && pwd)/$(basename "$BENCH")"
JSON_VALIDATE="$(cd "$(dirname "$JSON_VALIDATE")" && pwd)/$(basename "$JSON_VALIDATE")"

workdir="$(mktemp -d)"
bench_pid=""
cleanup() {
  [ -n "$bench_pid" ] && kill "$bench_pid" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT
cd "$workdir" || exit 2

# --- 1. Launch the bench with the endpoint on an OS-assigned port. -----
"$BENCH" --smoke --metrics-port 0 > bench.log 2>&1 &
bench_pid=$!

# The bench prints "metrics endpoint: http://127.0.0.1:PORT/metrics"
# before the driver starts; wait for it (or an early death).
url=""
for _ in $(seq 1 400); do
  url=$(sed -n 's|^metrics endpoint: \(http://[^ ]*\)/metrics .*|\1|p' \
        bench.log | head -n 1)
  [ -n "$url" ] && break
  if ! kill -0 "$bench_pid" 2>/dev/null; then
    echo "run_obs_live_smoke: FAILED — bench died before the endpoint came up" >&2
    cat bench.log >&2
    exit 1
  fi
  sleep 0.05
done
if [ -z "$url" ]; then
  echo "run_obs_live_smoke: FAILED — no metrics endpoint URL in bench output" >&2
  cat bench.log >&2
  exit 1
fi

# --- 2. Probe the live endpoint while the run is in flight. ------------
if ! "$CURL" -sf --max-time 5 "$url/healthz" | grep -q '^ok$'; then
  echo "run_obs_live_smoke: FAILED — /healthz did not answer ok" >&2
  exit 1
fi

# Give the exporter a moment to take its first in-run snapshot, then
# require real serving metrics in the Prometheus text.
metrics=""
for _ in $(seq 1 60); do
  metrics=$("$CURL" -sf --max-time 5 "$url/metrics" || true)
  echo "$metrics" | grep -q '# TYPE serve_latency_us' && break
  sleep 0.05
done
for needle in '# TYPE serve_latency_us' 'serve_latency_us_count' \
              'serve_requests'; do
  if ! echo "$metrics" | grep -q "$needle"; then
    echo "run_obs_live_smoke: FAILED — /metrics is missing '$needle'" >&2
    echo "$metrics" | head -n 40 >&2
    exit 1
  fi
done

if ! "$CURL" -sf --max-time 5 "$url/metrics.json" | "$JSON_VALIDATE"; then
  echo "run_obs_live_smoke: FAILED — /metrics.json is not valid JSON" >&2
  exit 1
fi

# --- 3. Let the run finish and audit the exported JSONL. ---------------
wait "$bench_pid"
status=$?
bench_pid=""
if [ "$status" -ne 0 ]; then
  echo "run_obs_live_smoke: FAILED — bench exited $status" >&2
  tail -n 30 bench.log >&2
  exit 1
fi

jsonl="results/BENCH_serve_scale_metrics.jsonl"
if ! [ -s "$jsonl" ]; then
  echo "run_obs_live_smoke: FAILED — $jsonl was not written" >&2
  exit 1
fi
if ! "$JSON_VALIDATE" --jsonl "$jsonl"; then
  echo "run_obs_live_smoke: FAILED — $jsonl has invalid lines" >&2
  exit 1
fi
# The point of the plane: exported aggregates resolve to concrete
# requests. At least one snapshot must carry exemplars with trace ids.
if ! grep -q '"exemplars"' "$jsonl" || ! grep -q '"trace_id"' "$jsonl"; then
  echo "run_obs_live_smoke: FAILED — no exemplars in the exported JSONL" >&2
  exit 1
fi

lines=$(wc -l < "$jsonl")
echo "run_obs_live_smoke: OK (live /metrics + /metrics.json + $lines JSONL snapshots with exemplars)"
